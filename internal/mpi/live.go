package mpi

import (
	"fmt"
	"math"
	"sync"
)

// LiveConfig parameterises the live (goroutine) engine.
type LiveConfig struct {
	// Procs is the number of ranks.
	Procs int
	// FlopRate is the baseline compute speed in flop/s (default 1e9).
	FlopRate float64
	// Latency is the one-way message latency in seconds (default 50 us,
	// i.e. three 16.67 us hops as on a switched cluster).
	Latency float64
	// Bandwidth is the point-to-point bandwidth in B/s (default 1.25e8).
	Bandwidth float64
	// EagerThreshold is the message size (bytes) above which sends use the
	// synchronous rendezvous protocol (default 64 KiB).
	EagerThreshold float64
	// Rate modulates the flop rate per burst (nil = constant rate).
	Rate RateMultiplier
}

func (c *LiveConfig) setDefaults() {
	if c.FlopRate == 0 {
		c.FlopRate = 1e9
	}
	if c.Latency == 0 {
		c.Latency = 3 * 16.67e-6
	}
	if c.Bandwidth == 0 {
		c.Bandwidth = 1.25e8
	}
	if c.EagerThreshold == 0 {
		c.EagerThreshold = 64 * 1024
	}
}

// liveMsg is an unmatched send posted to a pair box.
type liveMsg struct {
	bytes     float64
	sendClock float64      // sender clock when the message was posted
	ack       chan float64 // rendezvous only: transfer end back to sender
}

// matchResult is what a receive learns when its message is matched.
type matchResult struct {
	bytes float64
	end   float64 // receiver-side completion time
}

// postedRecv is an unmatched receive posted to a pair box. Posting time is
// what rendezvous transfers synchronise on: an MPI_Irecv makes the buffer
// available at post time, allowing communication/computation overlap.
type postedRecv struct {
	postClock float64
	matched   chan matchResult // cap 1; filled exactly once at match time
}

// pairBox holds the unmatched sends and receives of one (src, dst) pair.
// Matching is FIFO on both sides: the k-th send always pairs with the k-th
// posted receive, so virtual times are deterministic no matter how the
// goroutines interleave in real time.
type pairBox struct {
	mu    sync.Mutex
	sends []*liveMsg
	recvs []*postedRecv
}

// liveWorld owns the per-pair boxes.
type liveWorld struct {
	cfg   LiveConfig
	mu    sync.Mutex
	boxes map[int]*pairBox
}

func (w *liveWorld) box(src, dst int) *pairBox {
	key := src*w.cfg.Procs + dst
	w.mu.Lock()
	b := w.boxes[key]
	if b == nil {
		b = &pairBox{}
		w.boxes[key] = b
	}
	w.mu.Unlock()
	return b
}

// transferTime is the latency+bandwidth cost of a message.
func (w *liveWorld) transferTime(bytes float64) float64 {
	return w.cfg.Latency + bytes/w.cfg.Bandwidth
}

// match joins a send and a receive and computes the completion times. For
// eager messages the transfer was already under way: it completes at
// sendClock + size/bw regardless of the receiver. For rendezvous messages
// the transfer starts when both sides are ready — max(sendClock, postClock)
// — and the sender learns the end through its ack channel.
func (w *liveWorld) match(msg *liveMsg, pr *postedRecv) {
	if msg.ack == nil {
		pr.matched <- matchResult{bytes: msg.bytes, end: msg.sendClock + msg.bytes/w.cfg.Bandwidth}
		return
	}
	end := math.Max(msg.sendClock, pr.postClock) + w.transferTime(msg.bytes)
	msg.ack <- end
	pr.matched <- matchResult{bytes: msg.bytes, end: end}
}

// postSend adds a send to the pair box, matching it immediately when a
// receive is already pending.
func (w *liveWorld) postSend(src, dst int, msg *liveMsg) {
	b := w.box(src, dst)
	b.mu.Lock()
	if len(b.recvs) > 0 {
		pr := b.recvs[0]
		b.recvs = b.recvs[1:]
		b.mu.Unlock()
		w.match(msg, pr)
		return
	}
	b.sends = append(b.sends, msg)
	b.mu.Unlock()
}

// postRecv adds a receive to the pair box, matching it immediately when a
// send is already pending.
func (w *liveWorld) postRecv(src, dst int, pr *postedRecv) {
	b := w.box(src, dst)
	b.mu.Lock()
	if len(b.sends) > 0 {
		msg := b.sends[0]
		b.sends = b.sends[1:]
		b.mu.Unlock()
		w.match(msg, pr)
		return
	}
	b.recvs = append(b.recvs, pr)
	b.mu.Unlock()
}

// liveComm is the per-rank communicator of the live engine.
type liveComm struct {
	w     *liveWorld
	me    int
	clock float64
	flops float64
	seq   int64
}

var _ Comm = (*liveComm)(nil)

// liveRequest implements Request for the live engine.
type liveRequest struct {
	isRecv bool
	peer   int
	bytes  float64
	ack    chan float64 // rendezvous send: transfer-end reply
	pr     *postedRecv  // receive: the posted request
	done   bool
}

func (c *liveComm) Rank() int          { return c.me }
func (c *liveComm) Size() int          { return c.w.cfg.Procs }
func (c *liveComm) Now() float64       { return c.clock }
func (c *liveComm) FlopCount() float64 { return c.flops }

func (c *liveComm) rank() int { return c.me }
func (c *liveComm) size() int { return c.w.cfg.Procs }

func (c *liveComm) addFlops(f float64) { c.flops += f }

func (c *liveComm) computeRaw(flops float64) {
	rate := c.w.cfg.FlopRate
	if m := c.w.cfg.Rate; m != nil {
		rate *= m(c.me, c.seq, flops)
	}
	c.seq++
	c.clock += flops / rate
}

func (c *liveComm) Compute(flops float64) {
	if flops < 0 {
		panic(fmt.Sprintf("mpi: negative compute volume %g", flops))
	}
	c.flops += flops
	c.computeRaw(flops)
}

func (c *liveComm) Delay(seconds float64) {
	if seconds > 0 {
		c.clock += seconds
	}
}

func (c *liveComm) sendRaw(dst int, bytes float64) {
	validRank("send to", dst, c.Size())
	if dst == c.me {
		panic("mpi: self message")
	}
	if bytes <= c.w.cfg.EagerThreshold {
		// Eager: the sender only pays the injection overhead; the message
		// completes on the receiver side from its own send clock.
		c.clock += c.w.cfg.Latency
		c.w.postSend(c.me, dst, &liveMsg{bytes: bytes, sendClock: c.clock})
		return
	}
	// Rendezvous: the transfer starts when both sides are ready and the
	// sender blocks until it completes (MPI synchronous mode).
	msg := &liveMsg{bytes: bytes, sendClock: c.clock, ack: make(chan float64, 1)}
	c.w.postSend(c.me, dst, msg)
	c.clock = math.Max(c.clock, <-msg.ack)
}

func (c *liveComm) recvRaw(src int) float64 {
	validRank("receive from", src, c.Size())
	pr := &postedRecv{postClock: c.clock, matched: make(chan matchResult, 1)}
	c.w.postRecv(src, c.me, pr)
	res := <-pr.matched
	c.clock = math.Max(c.clock, res.end)
	return res.bytes
}

func (c *liveComm) Send(dst int, bytes float64) { c.sendRaw(dst, bytes) }

func (c *liveComm) Isend(dst int, bytes float64) Request {
	validRank("isend to", dst, c.Size())
	if bytes <= c.w.cfg.EagerThreshold {
		c.clock += c.w.cfg.Latency
		c.w.postSend(c.me, dst, &liveMsg{bytes: bytes, sendClock: c.clock})
		return &liveRequest{peer: dst, bytes: bytes, done: true}
	}
	msg := &liveMsg{bytes: bytes, sendClock: c.clock, ack: make(chan float64, 1)}
	c.w.postSend(c.me, dst, msg)
	return &liveRequest{peer: dst, bytes: bytes, ack: msg.ack}
}

func (c *liveComm) Recv(src int) float64 { return c.recvRaw(src) }

func (c *liveComm) Irecv(src int) Request {
	validRank("irecv from", src, c.Size())
	pr := &postedRecv{postClock: c.clock, matched: make(chan matchResult, 1)}
	c.w.postRecv(src, c.me, pr)
	return &liveRequest{isRecv: true, peer: src, pr: pr}
}

func (c *liveComm) Wait(req Request) Completion {
	r, ok := req.(*liveRequest)
	if !ok {
		panic("mpi: foreign request handed to live engine")
	}
	if r.isRecv {
		if !r.done {
			res := <-r.pr.matched
			c.clock = math.Max(c.clock, res.end)
			r.bytes = res.bytes
			r.done = true
		}
		return Completion{IsRecv: true, Peer: r.peer, Bytes: r.bytes}
	}
	if !r.done {
		end := <-r.ack
		c.clock = math.Max(c.clock, end)
		r.done = true
	}
	return Completion{Peer: r.peer, Bytes: r.bytes}
}

func (c *liveComm) Bcast(bytes float64)            { bcast(c, bytes) }
func (c *liveComm) Reduce(vcomm, vcomp float64)    { reduce(c, vcomm, vcomp) }
func (c *liveComm) Allreduce(vcomm, vcomp float64) { allreduce(c, vcomm, vcomp) }
func (c *liveComm) Barrier()                       { barrier(c) }

// RunLive executes the program on the live engine and returns the makespan:
// the largest rank clock after every rank finished.
func RunLive(cfg LiveConfig, prog Program) (float64, error) {
	return RunLiveWrapped(cfg, nil, prog)
}

// RunLiveWrapped is RunLive with a per-rank communicator decorator (the
// instrumentation hook used by the TAU layer). wrap may be nil.
func RunLiveWrapped(cfg LiveConfig, wrap func(rank int, c Comm) Comm, prog Program) (float64, error) {
	if cfg.Procs <= 0 {
		return 0, fmt.Errorf("mpi: world size %d", cfg.Procs)
	}
	cfg.setDefaults()
	w := &liveWorld{cfg: cfg, boxes: make(map[int]*pairBox)}
	comms := make([]*liveComm, cfg.Procs)
	errs := make([]error, cfg.Procs)
	var wg sync.WaitGroup
	for r := 0; r < cfg.Procs; r++ {
		comms[r] = &liveComm{w: w, me: r}
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[r] = fmt.Errorf("mpi: rank %d panicked: %v", r, p)
				}
			}()
			var c Comm = comms[r]
			if wrap != nil {
				c = wrap(r, c)
			}
			prog(c)
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	makespan := 0.0
	for _, c := range comms {
		makespan = math.Max(makespan, c.clock)
	}
	return makespan, nil
}
