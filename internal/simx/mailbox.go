package simx

import "tireplay/internal/fifo"

// MailboxID is an interned mailbox handle: a dense index into the kernel's
// mailbox table. Resolving a name costs one map lookup (plus the caller's
// string formatting); the ID-based operations skip both, which is why the
// replay tool interns its per-(src,dst) mailboxes once at rank spawn time
// and addresses every rendezvous by ID afterwards.
type MailboxID int32

// Mailbox is a rendezvous point matching sends and receives in FIFO order,
// the mechanism behind both the MSG-style replay actions and the MPI
// substrate. A message posted to a mailbox starts its transfer when a
// receive is posted there (and vice-versa); until then both sides block (or
// keep a pending handle, for the asynchronous variants).
type Mailbox struct {
	name  string // empty for anonymous (NewMailbox) mailboxes
	id    MailboxID
	sends fifo.Queue[*Comm]
	recvs fifo.Queue[*Comm]
}

// Comm is the public handle on a pending, in-flight or completed
// communication, returned by the asynchronous mailbox operations and
// consumed by WaitComm. The send side and the receive side each hold their
// own handle; the two are joined to one transfer activity at match time.
// At completion the kernel detaches the handle from the (recycled) activity,
// so a Comm stays queryable for as long as the caller keeps it.
//
// Handles are pooled: the kernel reclaims detached sends at completion and
// the synchronous Send/Recv wrappers reclaim theirs on return, so the
// steady-state replay cycle allocates no handle. A handle obtained from
// ISend/IRecv can be handed back explicitly with Proc.ReleaseComm once the
// caller is done querying it.
type Comm struct {
	act     *activity // non-nil only while matched and in flight
	done    bool
	failed  *FailedError // non-nil when a fail-stop killed the communication
	payload any
	bytes   float64
	src     string
	dst     string

	proc         *Proc // poster of this side
	detached     bool
	matchWaiters []*Proc
}

// Done reports whether the communication has fully completed.
func (c *Comm) Done() bool { return c.done }

// Payload returns the data attached by the sender; valid after completion.
func (c *Comm) Payload() any { return c.payload }

// Bytes returns the size of the message in bytes. On a receive handle it is
// only meaningful once the communication has been matched.
func (c *Comm) Bytes() float64 { return c.bytes }

// Src returns the name of the sending process (empty on an unmatched
// receive handle).
func (c *Comm) Src() string { return c.src }

// Dst returns the name of the receiving process (empty until matched).
func (c *Comm) Dst() string { return c.dst }

// Failed returns the fail-stop error that killed the communication, or nil.
// A failed comm reports Done() true; waiting on it raises the failure in the
// waiting process (recoverable via FailureOf).
func (c *Comm) Failed() *FailedError { return c.failed }

func (c *Comm) matched() bool { return c.done || c.act != nil }

func (c *Comm) addMatchWaiter(p *Proc) {
	c.matchWaiters = append(c.matchWaiters, p)
}

// newComm takes a handle from the kernel pool (or allocates one) and resets
// it, keeping the match-waiter backing array.
func (k *Kernel) newComm() *Comm {
	n := len(k.commPool)
	if n == 0 {
		return &Comm{}
	}
	c := k.commPool[n-1]
	k.commPool[n-1] = nil
	k.commPool = k.commPool[:n-1]
	mw := c.matchWaiters[:0]
	*c = Comm{matchWaiters: mw}
	return c
}

// freeComm returns a handle to the pool. The caller guarantees no reference
// survives: the kernel does this itself for detached sends at completion,
// and the synchronous Send/Recv wrappers for the handles they never expose.
// Every live handle has a poster, so a cleared proc marks an
// already-released one and a double release degrades to a no-op instead of
// putting the same handle in the pool twice (two later rendezvous silently
// sharing one handle).
func (k *Kernel) freeComm(c *Comm) {
	if c.proc == nil {
		return
	}
	c.proc = nil
	k.commPool = append(k.commPool, c)
}

// mailbox returns (creating on demand) the named mailbox. Every name is a
// valid key — including the empty string, which resolves to one shared
// mailbox like any other name; only NewMailbox handles are anonymous.
func (k *Kernel) mailbox(name string) *Mailbox {
	mb := k.mailboxes[name]
	if mb == nil {
		mb = k.internMailbox(name, true)
	}
	return mb
}

// internMailbox appends a mailbox to the dense table, registering it for
// string lookup unless it is anonymous.
func (k *Kernel) internMailbox(name string, register bool) *Mailbox {
	mb := &Mailbox{name: name, id: MailboxID(len(k.mboxByID))}
	k.mboxByID = append(k.mboxByID, mb)
	if register {
		k.mailboxes[name] = mb
	}
	return mb
}

// MailboxID interns the named mailbox (creating it on demand) and returns
// its dense ID. The ID aliases the string name: posts through either address
// meet in the same FIFO.
func (k *Kernel) MailboxID(name string) MailboxID { return k.mailbox(name).id }

// NewMailbox creates an anonymous mailbox reachable only through the
// returned ID — no name is formatted or hashed. The replay tool derives one
// per collective round and peer from its round counter.
func (k *Kernel) NewMailbox() MailboxID { return k.internMailbox("", false).id }

// mailboxAt resolves an interned ID.
func (k *Kernel) mailboxAt(id MailboxID) *Mailbox {
	if int(id) < 0 || int(id) >= len(k.mboxByID) {
		panic("simx: invalid mailbox id")
	}
	return k.mboxByID[id]
}

// post registers a send request on the mailbox and matches it against a
// pending receive if one exists.
func (k *Kernel) post(p *Proc, mb *Mailbox, bytes float64, payload any, detached bool) *Comm {
	c := k.newComm()
	c.payload = payload
	c.bytes = bytes
	c.src = p.name
	c.proc = p
	c.detached = detached
	if !mb.recvs.Empty() {
		k.match(c, mb.recvs.Pop())
	} else {
		mb.sends.Push(c)
	}
	return c
}

// postRecv registers a receive request on the mailbox and matches it
// against a pending send if one exists.
func (k *Kernel) postRecv(p *Proc, mb *Mailbox) *Comm {
	c := k.newComm()
	c.proc = p
	if !mb.sends.Empty() {
		k.match(mb.sends.Pop(), c)
	} else {
		mb.recvs.Push(c)
	}
	return c
}

// match joins a send handle and a receive handle: the transfer activity
// starts now, between the posters' hosts. When faults are active and an
// endpoint host or a route link has fail-stopped, the rendezvous fails
// instead: both handles complete with the failure attached, so a surviving
// peer observes its partner's death rather than blocking forever.
func (k *Kernel) match(sc, rc *Comm) {
	if k.faultsActive {
		if err := k.routeFailure(sc.proc.host, rc.proc.host); err != nil {
			k.failMatch(sc, rc, err)
			return
		}
	}
	act := k.startTransfer(sc.proc.host, rc.proc.host, sc.proc.name, rc.proc.name, sc.bytes)
	sc.act = act
	rc.act = act
	act.comms[0] = sc
	act.comms[1] = rc
	rc.payload = sc.payload
	rc.bytes = sc.bytes
	rc.src = sc.proc.name
	rc.dst = rc.proc.name
	sc.dst = rc.proc.name
	for i, w := range sc.matchWaiters {
		k.wake(w)
		sc.matchWaiters[i] = nil
	}
	sc.matchWaiters = sc.matchWaiters[:0]
	for i, w := range rc.matchWaiters {
		k.wake(w)
		rc.matchWaiters[i] = nil
	}
	rc.matchWaiters = rc.matchWaiters[:0]
}
