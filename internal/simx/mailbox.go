package simx

// Mailbox is a rendezvous point matching sends and receives in FIFO order,
// the mechanism behind both the MSG-style replay actions and the MPI
// substrate. A message posted to a mailbox starts its transfer when a
// receive is posted there (and vice-versa); until then both sides block (or
// keep a pending handle, for the asynchronous variants).
type Mailbox struct {
	name  string
	sends []*Comm
	recvs []*Comm
}

// Comm is the public handle on a pending, in-flight or completed
// communication, returned by the asynchronous mailbox operations and
// consumed by WaitComm. The send side and the receive side each hold their
// own handle; the two are joined to one transfer activity at match time.
// At completion the kernel detaches the handle from the (recycled) activity,
// so a Comm stays queryable for as long as the caller keeps it.
type Comm struct {
	act     *activity // non-nil only while matched and in flight
	done    bool
	payload any
	bytes   float64
	src     string
	dst     string

	proc         *Proc // poster of this side
	detached     bool
	matchWaiters []*Proc
}

// Done reports whether the communication has fully completed.
func (c *Comm) Done() bool { return c.done }

// Payload returns the data attached by the sender; valid after completion.
func (c *Comm) Payload() any { return c.payload }

// Bytes returns the size of the message in bytes. On a receive handle it is
// only meaningful once the communication has been matched.
func (c *Comm) Bytes() float64 { return c.bytes }

// Src returns the name of the sending process (empty on an unmatched
// receive handle).
func (c *Comm) Src() string { return c.src }

// Dst returns the name of the receiving process (empty until matched).
func (c *Comm) Dst() string { return c.dst }

func (c *Comm) matched() bool { return c.done || c.act != nil }

func (c *Comm) addMatchWaiter(p *Proc) {
	c.matchWaiters = append(c.matchWaiters, p)
}

// mailbox returns (creating on demand) the named mailbox.
func (k *Kernel) mailbox(name string) *Mailbox {
	mb := k.mailboxes[name]
	if mb == nil {
		mb = &Mailbox{name: name}
		k.mailboxes[name] = mb
	}
	return mb
}

// post registers a send request on the mailbox and matches it against a
// pending receive if one exists.
func (k *Kernel) post(p *Proc, mailbox string, bytes float64, payload any, detached bool) *Comm {
	mb := k.mailbox(mailbox)
	c := &Comm{
		payload:  payload,
		bytes:    bytes,
		src:      p.name,
		proc:     p,
		detached: detached,
	}
	if len(mb.recvs) > 0 {
		rc := mb.recvs[0]
		mb.recvs = mb.recvs[1:]
		k.match(c, rc)
	} else {
		mb.sends = append(mb.sends, c)
	}
	return c
}

// postRecv registers a receive request on the mailbox and matches it
// against a pending send if one exists.
func (k *Kernel) postRecv(p *Proc, mailbox string) *Comm {
	mb := k.mailbox(mailbox)
	c := &Comm{proc: p}
	if len(mb.sends) > 0 {
		sc := mb.sends[0]
		mb.sends = mb.sends[1:]
		k.match(sc, c)
	} else {
		mb.recvs = append(mb.recvs, c)
	}
	return c
}

// match joins a send handle and a receive handle: the transfer activity
// starts now, between the posters' hosts.
func (k *Kernel) match(sc, rc *Comm) {
	act := k.startTransfer(sc.proc.host, rc.proc.host, sc.proc.name, rc.proc.name, sc.bytes)
	sc.act = act
	rc.act = act
	act.comms[0] = sc
	act.comms[1] = rc
	rc.payload = sc.payload
	rc.bytes = sc.bytes
	rc.src = sc.proc.name
	rc.dst = rc.proc.name
	sc.dst = rc.proc.name
	for _, w := range sc.matchWaiters {
		k.wake(w)
	}
	sc.matchWaiters = nil
	for _, w := range rc.matchWaiters {
		k.wake(w)
	}
	rc.matchWaiters = nil
}
