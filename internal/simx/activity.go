package simx

import "tireplay/internal/eventq"

// actKind discriminates the resource an activity consumes.
type actKind uint8

const (
	actCompute actKind = iota
	actComm
	actSleep
)

// phase tracks the life-cycle of an activity. Communications pay the route
// latency first (phaseLatency) and only then contend for bandwidth
// (phaseTransfer); computations and sleeps have a single phase.
type phase uint8

const (
	phaseCompute phase = iota
	phaseLatency
	phaseTransfer
	phaseSleep
)

// activity is a unit of simulated work: a compute burst, a data transfer, or
// a sleep. It progresses at a rate set by the kernel's sharing models and
// completes via an event in the kernel queue.
type activity struct {
	kind  actKind
	phase phase

	volume    float64 // total flops or bytes (0 for sleeps)
	remaining float64
	rate      float64
	allocated float64 // max-min share (comm only, before bwFactor)
	bwFactor  float64

	lastUpdate float64
	start      float64
	done       bool

	host  *Host   // compute only
	route *Route  // comm only
	links []*Link // route links (comm), cached for the solver

	ownerName string // proc that created it (compute, sleep)
	srcName   string // comm: sending process
	dstName   string // comm: receiving process

	doneEv  *eventq.Event
	waiters []*Proc
	onDone  func() // internal completion hook (mailbox bookkeeping)
}

// startCompute creates and registers a compute activity on h.
func (k *Kernel) startCompute(p *Proc, h *Host, flops float64) *activity {
	a := &activity{
		kind:       actCompute,
		phase:      phaseCompute,
		volume:     flops,
		remaining:  flops,
		lastUpdate: k.now,
		start:      k.now,
		host:       h,
		ownerName:  p.name,
		bwFactor:   1,
	}
	k.settleHost(h)
	h.computes[a] = struct{}{}
	if flops <= 0 {
		// Zero-work burst: complete "immediately" through the event queue to
		// preserve deterministic ordering with same-time events.
		a.remaining = 0
		a.doneEv = k.queue.Push(k.now, a)
		return a
	}
	k.reshareHost(h)
	return a
}

// startSleep creates a pure-delay activity.
func (k *Kernel) startSleep(p *Proc, seconds float64) *activity {
	if seconds < 0 {
		seconds = 0
	}
	a := &activity{
		kind:       actSleep,
		phase:      phaseSleep,
		lastUpdate: k.now,
		start:      k.now,
		ownerName:  p.name,
		bwFactor:   1,
	}
	a.doneEv = k.queue.Push(k.now+seconds, a)
	return a
}

// startTransfer creates a communication activity between two hosts. The
// latency phase starts immediately; the transfer phase joins the contended
// flow set when the latency has elapsed.
func (k *Kernel) startTransfer(src, dst *Host, srcName, dstName string, bytes float64) *activity {
	route := k.routeBetween(src, dst)
	latF, bwF := 1.0, 1.0
	if k.rateModel != nil {
		latF, bwF = k.rateModel(bytes)
	}
	a := &activity{
		kind:       actComm,
		phase:      phaseLatency,
		volume:     bytes,
		remaining:  bytes,
		lastUpdate: k.now,
		start:      k.now,
		route:      route,
		links:      route.Links,
		srcName:    srcName,
		dstName:    dstName,
		bwFactor:   bwF,
	}
	a.doneEv = k.queue.Push(k.now+route.Latency*latF, a)
	return a
}
