package simx

import "tireplay/internal/eventq"

// actKind discriminates the resource an activity consumes.
type actKind uint8

const (
	actCompute actKind = iota
	actComm
	actSleep
)

// phase tracks the life-cycle of an activity. Communications pay the route
// latency first (phaseLatency) and only then contend for bandwidth
// (phaseTransfer); computations and sleeps have a single phase.
type phase uint8

const (
	phaseCompute phase = iota
	phaseLatency
	phaseTransfer
	phaseSleep
)

// activity is a unit of simulated work: a compute burst, a data transfer, or
// a sleep. It progresses at a rate set by the kernel's sharing models and
// completes via an event in the kernel queue. Activities are pooled by the
// kernel: completed ones return to a free list, so steady-state replay
// creates no garbage per action.
type activity struct {
	kind  actKind
	phase phase

	volume    float64 // total flops or bytes (0 for sleeps)
	remaining float64
	rate      float64
	allocated float64 // max-min share (comm only, before bwFactor)
	bwFactor  float64

	lastUpdate float64
	start      float64
	done       bool

	// pos is the activity's index in the set it currently belongs to —
	// Kernel.flows for transfers, Host.computes for compute bursts — the
	// same position-index trick eventq.Event uses for O(1) cancellation.
	// -1 while the activity is in no set.
	pos int
	// mark is the kernel's visit epoch during component traversal.
	mark uint64
	// rateEpoch is the kernel reshare pass that last changed rate; the lazy
	// rescheduling path leaves the completion event alone between epochs.
	rateEpoch uint64

	host  *Host   // compute only
	links []*Link // route links (comm), cached for the solver

	// srcHost/dstHost are the transfer endpoints and owner the proc behind a
	// compute or sleep; the fault injector targets activities through them
	// when a resource fail-stops.
	srcHost *Host
	dstHost *Host
	owner   *Proc

	ownerName string // proc that created it (compute, sleep)
	srcName   string // comm: sending process
	dstName   string // comm: receiving process

	doneEv  *eventq.Event
	waiters []*Proc
	// comms are the send- and receive-side handles of a transfer; at
	// completion they are detached so the activity can be recycled while
	// handles remain queryable.
	comms [2]*Comm
}

// newActivity takes an activity from the kernel pool (or allocates one) and
// resets it to a zero state, keeping the waiters backing array.
func (k *Kernel) newActivity() *activity {
	n := len(k.actPool)
	if n == 0 {
		return &activity{pos: -1}
	}
	a := k.actPool[n-1]
	k.actPool[n-1] = nil
	k.actPool = k.actPool[:n-1]
	waiters := a.waiters[:0]
	*a = activity{pos: -1, waiters: waiters}
	return a
}

// freeActivity returns a completed activity to the pool. The caller must
// have removed it from every kernel set and detached every external handle.
func (k *Kernel) freeActivity(a *activity) {
	k.actPool = append(k.actPool, a)
}

// startCompute creates and registers a compute activity on h.
func (k *Kernel) startCompute(p *Proc, h *Host, flops float64) *activity {
	a := k.newActivity()
	a.kind = actCompute
	a.phase = phaseCompute
	a.volume = flops
	a.remaining = flops
	a.lastUpdate = k.now
	a.start = k.now
	a.host = h
	a.owner = p
	a.ownerName = p.name
	a.bwFactor = 1
	k.settleHost(h)
	a.pos = len(h.computes)
	h.computes = append(h.computes, a)
	if flops <= 0 {
		// Zero-work burst: complete "immediately" through the event queue to
		// preserve deterministic ordering with same-time events.
		a.remaining = 0
		a.doneEv = k.queue.Push(k.now, a)
		return a
	}
	k.reshareHost(h)
	return a
}

// startSleep creates a pure-delay activity.
func (k *Kernel) startSleep(p *Proc, seconds float64) *activity {
	if seconds < 0 {
		seconds = 0
	}
	a := k.newActivity()
	a.kind = actSleep
	a.phase = phaseSleep
	a.lastUpdate = k.now
	a.start = k.now
	a.owner = p
	a.ownerName = p.name
	a.bwFactor = 1
	a.doneEv = k.queue.Push(k.now+seconds, a)
	return a
}

// startTransfer creates a communication activity between two hosts. The
// latency phase starts immediately; the transfer phase joins the contended
// flow set when the latency has elapsed.
func (k *Kernel) startTransfer(src, dst *Host, srcName, dstName string, bytes float64) *activity {
	route := k.routeBetween(src, dst)
	latF, bwF := 1.0, 1.0
	if k.rateModel != nil {
		latF, bwF = k.rateModel(bytes)
	}
	a := k.newActivity()
	a.kind = actComm
	a.phase = phaseLatency
	a.volume = bytes
	a.remaining = bytes
	a.lastUpdate = k.now
	a.start = k.now
	a.links = route.Links
	a.srcHost = src
	a.dstHost = dst
	a.srcName = srcName
	a.dstName = dstName
	a.bwFactor = bwF
	a.doneEv = k.queue.Push(k.now+route.Latency*latF, a)
	return a
}
