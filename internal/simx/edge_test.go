package simx

import (
	"strings"
	"testing"
)

func TestMissingRouteSurfacesAsRunError(t *testing.T) {
	k := New()
	k.AddHost("a", 1e9, 1)
	k.AddHost("b", 1e9, 1)
	// No route a->b declared: sending must fail loudly, not hang or crash.
	k.Spawn("s", k.Host("a"), func(p *Proc) { p.Send("m", 10, nil) })
	k.Spawn("r", k.Host("b"), func(p *Proc) { p.Recv("m") })
	_, err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "no route") {
		t.Fatalf("err = %v", err)
	}
}

func TestProcessPanicSurfacesAsRunError(t *testing.T) {
	k := New()
	h := k.AddHost("a", 1e9, 1)
	k.Spawn("bad", h, func(p *Proc) { panic("user bug") })
	_, err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "user bug") {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "bad") {
		t.Fatalf("error does not name the process: %v", err)
	}
}

func TestDuplicateHostPanics(t *testing.T) {
	k := New()
	k.AddHost("a", 1e9, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for duplicate host")
		}
	}()
	k.AddHost("a", 1e9, 1)
}

func TestDuplicateLinkPanics(t *testing.T) {
	k := New()
	k.AddLink("l", 1e8, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for duplicate link")
		}
	}()
	k.AddLink("l", 1e8, 0)
}

func TestRouteToUndeclaredHostPanics(t *testing.T) {
	k := New()
	k.AddHost("a", 1e9, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for route to unknown host")
		}
	}()
	k.AddRoute("a", "ghost", nil)
}

func TestZeroCoreHostClamped(t *testing.T) {
	k := New()
	h := k.AddHost("a", 1e9, 0)
	if h.Cores != 1 {
		t.Fatalf("cores = %d", h.Cores)
	}
}

func TestDeadlockErrorListsReasons(t *testing.T) {
	k := New()
	h := k.AddHost("a", 1e9, 1)
	k.Spawn("starved", h, func(p *Proc) { p.Recv("never") })
	_, err := k.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(de.Error(), "starved") {
		t.Fatalf("deadlock error does not name the process: %v", de)
	}
}

func TestWaitOnCompletedCommReturnsImmediately(t *testing.T) {
	k := New()
	h1 := k.AddHost("a", 1e9, 1)
	h2 := k.AddHost("b", 1e9, 1)
	l := k.AddLink("l", 1e8, 0)
	k.AddRoute("a", "b", []*Link{l})
	var tAfter float64
	k.Spawn("s", h1, func(p *Proc) {
		c := p.ISend("m", 10, nil)
		p.Sleep(1) // comm completes long before
		p.WaitComm(c)
		p.WaitComm(c) // second wait on a done comm is a no-op
		tAfter = p.Now()
	})
	k.Spawn("r", h2, func(p *Proc) { p.Recv("m") })
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if tAfter != 1.0 {
		t.Fatalf("wait after completion advanced clock to %g", tAfter)
	}
}

func TestManySmallMessagesOrdering(t *testing.T) {
	// FIFO matching: messages arrive in send order.
	k := New()
	h1 := k.AddHost("a", 1e9, 1)
	h2 := k.AddHost("b", 1e9, 1)
	l := k.AddLink("l", 1e8, 1e-6)
	k.AddRoute("a", "b", []*Link{l})
	const n = 100
	k.Spawn("s", h1, func(p *Proc) {
		for i := 0; i < n; i++ {
			p.ISendDetached("m", 8, i)
		}
	})
	var got []int
	k.Spawn("r", h2, func(p *Proc) {
		for i := 0; i < n; i++ {
			got = append(got, p.Recv("m").(int))
		}
	})
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("message %d out of order: got %d", i, v)
		}
	}
}

func TestHostAccessors(t *testing.T) {
	k := New()
	k.AddHost("x", 2e9, 4)
	if k.Hosts() != 1 {
		t.Fatalf("Hosts() = %d", k.Hosts())
	}
	if k.Host("nope") != nil {
		t.Fatal("unknown host should be nil")
	}
	if k.Link("nope") != nil {
		t.Fatal("unknown link should be nil")
	}
	l := k.AddLink("l", 1e8, 1e-3)
	if k.Link("l") != l {
		t.Fatal("link lookup failed")
	}
}

func TestNowAdvancesMonotonically(t *testing.T) {
	k := New()
	h := k.AddHost("a", 1e9, 1)
	var stamps []float64
	k.Spawn("p", h, func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Execute(1e6)
			stamps = append(stamps, p.Now())
		}
	})
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(stamps); i++ {
		if stamps[i] <= stamps[i-1] {
			t.Fatalf("clock not monotonic: %v", stamps)
		}
	}
}
