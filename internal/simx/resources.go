package simx

import "fmt"

// Host is a computing resource: a node of the simulated platform. Its Speed
// is the per-core computing power in flop/s. Concurrent compute activities
// share the host fairly: with n activities on c cores each runs at
// Speed*min(1, c/n) — the mechanism behind the linear slowdown of the
// paper's Folding acquisition mode.
type Host struct {
	Name  string
	Speed float64 // flop/s per core
	Cores int

	// baseSpeed is the nominal per-core power declared at AddHost time.
	// Degradation windows scale Speed in place; Restore rewinds to this.
	baseSpeed float64

	// off marks a fail-stopped host (see Kernel.FailHostAt): its running
	// activities were killed and any later operation touching it fails with
	// a *FailedError.
	off bool

	// id is the host's dense kernel-assigned index (declaration order);
	// routers key pair lookups and attachment tables off it, so route
	// resolution never touches the host name.
	id int

	// computes holds the running compute activities in start order; each
	// activity records its index in pos, so removal is O(1) without a map.
	computes []*activity
	loop     *Link  // private loopback link for intra-host communications
	loopRt   *Route // cached single-link route over loop
	// routeTo caches resolved outgoing routes under a pointer key, so the
	// per-match lookup neither concatenates a string key nor hashes one —
	// and a computed router composes each used pair at most once.
	routeTo map[*Host]*Route
}

// ID returns the host's dense kernel index, assigned in declaration order.
func (h *Host) ID() int { return h.id }

// Sharing is a link's bandwidth sharing policy.
type Sharing uint8

const (
	// SharingShared divides the link bandwidth among the flows crossing it
	// according to max-min fairness — the default, SimGrid's SHARED policy.
	SharingShared Sharing = iota
	// SharingFatpipe caps every flow at the full link bandwidth without
	// contention between flows — SimGrid's FATPIPE policy, the model of a
	// non-blocking switch fabric or an aggregate of parallel cables.
	SharingFatpipe
)

// Link is a network resource with a nominal bandwidth (byte/s) and latency
// (seconds). Concurrent flows crossing a link share its bandwidth according
// to the kernel's max-min fairness model, or each use the full bandwidth
// when the link is a fatpipe.
type Link struct {
	Name      string
	Bandwidth float64
	Latency   float64
	Sharing   Sharing

	// baseBandwidth is the nominal bandwidth declared at AddLink time.
	// Degradation windows scale Bandwidth in place; Restore rewinds to this.
	baseBandwidth float64

	// off marks a fail-stopped link (see Kernel.FailRouteAt): flows crossing
	// it were killed and any later transfer routed over it fails with a
	// *FailedError.
	off bool

	// index assigned by the max-min solver for fast lookups.
	idx int
	// flows lists the transfers currently crossing the link; it is the
	// adjacency structure the kernel walks to find the connected component
	// affected by a flow joining or leaving (partial resharing).
	flows []*activity
	// mark is the kernel's visit epoch during component traversal.
	mark uint64
}

// Route is an ordered sequence of links connecting two hosts. Latency is the
// sum of link latencies (plus any fixed extra the platform defines).
type Route struct {
	Links   []*Link
	Latency float64
}

// NewRoute builds a route over the given links with the summed latency.
func NewRoute(links []*Link) *Route {
	lat := 0.0
	for _, l := range links {
		lat += l.Latency
	}
	return &Route{Links: links, Latency: lat}
}

// Router resolves the route a transfer between two distinct hosts follows.
// The kernel consults its router on the first transfer of each (src, dst)
// pair and caches the result for the rest of the simulation, so a router may
// compose routes on demand (zone hierarchies, generated topologies) instead
// of materializing a per-pair table — the returned route must simply stay
// valid once handed out. Route returns nil when no route exists.
type Router interface {
	Route(src, dst *Host) *Route
}

// RouteAdder is implemented by routers that accept explicit per-pair routes;
// Kernel.AddRoute delegates to it.
type RouteAdder interface {
	AddRoute(src, dst *Host, r *Route)
}

// pairKey packs two dense host IDs into one map key; route lookups hash one
// integer instead of concatenating and hashing a "src|dst" string.
func pairKey(src, dst *Host) uint64 {
	return uint64(uint32(src.id))<<32 | uint64(uint32(dst.id))
}

// TableRouter is the kernel's default router: an explicit route table under
// dense host-ID pair keys.
type TableRouter struct {
	routes map[uint64]*Route
}

// NewTableRouter returns an empty explicit route table.
func NewTableRouter() *TableRouter {
	return &TableRouter{routes: make(map[uint64]*Route)}
}

// AddRoute declares the route from src to dst, replacing any previous one.
func (t *TableRouter) AddRoute(src, dst *Host, r *Route) {
	t.routes[pairKey(src, dst)] = r
}

// Route returns the declared route or nil.
func (t *TableRouter) Route(src, dst *Host) *Route {
	return t.routes[pairKey(src, dst)]
}

// StringTableRouter is the reference route table keyed by the historical
// "src|dst" name concatenation. It exists to pin the dense-keyed TableRouter
// against the original semantics (see TestTableRouterMatchesStringTable);
// nothing on a hot path formats or hashes a string through it unless it is
// explicitly installed.
type StringTableRouter struct {
	routes map[string]*Route
}

// NewStringTableRouter returns an empty string-keyed reference table.
func NewStringTableRouter() *StringTableRouter {
	return &StringTableRouter{routes: make(map[string]*Route)}
}

// AddRoute declares the route from src to dst, replacing any previous one.
func (t *StringTableRouter) AddRoute(src, dst *Host, r *Route) {
	t.routes[src.Name+"|"+dst.Name] = r
}

// Route returns the declared route or nil.
func (t *StringTableRouter) Route(src, dst *Host) *Route {
	return t.routes[src.Name+"|"+dst.Name]
}

// AddHost declares a host. Speed is per-core flop/s.
func (k *Kernel) AddHost(name string, speed float64, cores int) *Host {
	if _, dup := k.hosts[name]; dup {
		panic("simx: duplicate host " + name)
	}
	if cores < 1 {
		cores = 1
	}
	h := &Host{
		Name:      name,
		Speed:     speed,
		baseSpeed: speed,
		Cores:     cores,
		id:        len(k.hosts),
		loop: &Link{
			Name:      name + "_loopback",
			Bandwidth: k.LoopbackBandwidth,
			Latency:   k.LoopbackLatency,
		},
	}
	h.loopRt = &Route{Links: []*Link{h.loop}, Latency: h.loop.Latency}
	k.hosts[name] = h
	k.hostList = append(k.hostList, h)
	return h
}

// Host returns the named host or nil.
func (k *Kernel) Host(name string) *Host { return k.hosts[name] }

// Hosts returns the number of declared hosts.
func (k *Kernel) Hosts() int { return len(k.hosts) }

// AddLink declares a network link with the default shared policy.
func (k *Kernel) AddLink(name string, bandwidth, latency float64) *Link {
	if _, dup := k.links[name]; dup {
		panic("simx: duplicate link " + name)
	}
	l := &Link{Name: name, Bandwidth: bandwidth, baseBandwidth: bandwidth, Latency: latency}
	k.links[name] = l
	k.linkList = append(k.linkList, l)
	return l
}

// Link returns the named link or nil.
func (k *Kernel) Link(name string) *Link { return k.links[name] }

// SetRouter installs the route resolver consulted for host pairs without a
// cached route. The default is a dense-keyed TableRouter fed by AddRoute;
// platform layers install computed routers (zone hierarchies, generated
// topologies) instead. Installing a router drops every cached resolution.
func (k *Kernel) SetRouter(r Router) {
	k.router = r
	for _, h := range k.hosts {
		h.routeTo = nil
	}
}

// Router returns the installed route resolver.
func (k *Kernel) Router() Router { return k.router }

// AddRoute declares the route used by transfers from src to dst. Routes are
// directional; callers wanting symmetry add both directions. The route
// latency is the sum of the link latencies. The installed router must accept
// explicit routes (the default table does; computed routers may, as
// overrides).
func (k *Kernel) AddRoute(src, dst string, links []*Link) {
	s, d := k.hosts[src], k.hosts[dst]
	if s == nil || d == nil {
		panic(fmt.Sprintf("simx: route between undeclared hosts %q -> %q", src, dst))
	}
	ra, ok := k.router.(RouteAdder)
	if !ok {
		panic(fmt.Sprintf("simx: router %T does not accept explicit routes", k.router))
	}
	ra.AddRoute(s, d, NewRoute(links))
	// Drop any cached resolution of the replaced route.
	delete(s.routeTo, d)
}

// RouteLinks resolves the route a transfer between the named hosts crosses
// and appends the traversed link names to names, returning the extended
// slice. Coinciding source and destination resolve to the host-private
// loopback, exactly as the transfer itself would. The replay fork safety
// check uses it to map a recorded transfer back to the physical links whose
// sharing it influenced.
func (k *Kernel) RouteLinks(src, dst string, names []string) []string {
	s, d := k.hosts[src], k.hosts[dst]
	if s == nil || d == nil {
		panic(fmt.Sprintf("simx: RouteLinks between undeclared hosts %q -> %q", src, dst))
	}
	for _, l := range k.routeBetween(s, d).Links {
		names = append(names, l.Name)
	}
	return names
}

// routeBetween resolves the route for a transfer, falling back to the
// host-private loopback when source and destination coincide. The first
// resolution of a pair goes through the router; the result is cached under a
// pointer key on the source host.
func (k *Kernel) routeBetween(src, dst *Host) *Route {
	if src == dst {
		return src.loopRt
	}
	if r := src.routeTo[dst]; r != nil {
		return r
	}
	r := k.router.Route(src, dst)
	if r == nil {
		panic(fmt.Sprintf("simx: no route from %q to %q", src.Name, dst.Name))
	}
	if src.routeTo == nil {
		src.routeTo = make(map[*Host]*Route)
	}
	src.routeTo[dst] = r
	return r
}
