package simx

import "fmt"

// Host is a computing resource: a node of the simulated platform. Its Speed
// is the per-core computing power in flop/s. Concurrent compute activities
// share the host fairly: with n activities on c cores each runs at
// Speed*min(1, c/n) — the mechanism behind the linear slowdown of the
// paper's Folding acquisition mode.
type Host struct {
	Name  string
	Speed float64 // flop/s per core
	Cores int

	// computes holds the running compute activities in start order; each
	// activity records its index in pos, so removal is O(1) without a map.
	computes []*activity
	loop     *Link  // private loopback link for intra-host communications
	loopRt   *Route // cached single-link route over loop
	// routeTo caches resolved outgoing routes under a pointer key, so the
	// per-match lookup neither concatenates a string key nor hashes one.
	routeTo map[*Host]*Route
}

// Link is a network resource with a nominal bandwidth (byte/s) and latency
// (seconds). Concurrent flows crossing a link share its bandwidth according
// to the kernel's max-min fairness model.
type Link struct {
	Name      string
	Bandwidth float64
	Latency   float64

	// index assigned by the max-min solver for fast lookups.
	idx int
	// flows lists the transfers currently crossing the link; it is the
	// adjacency structure the kernel walks to find the connected component
	// affected by a flow joining or leaving (partial resharing).
	flows []*activity
	// mark is the kernel's visit epoch during component traversal.
	mark uint64
}

// Route is an ordered sequence of links connecting two hosts. Latency is the
// sum of link latencies (plus any fixed extra the platform defines).
type Route struct {
	Links   []*Link
	Latency float64
}

// AddHost declares a host. Speed is per-core flop/s.
func (k *Kernel) AddHost(name string, speed float64, cores int) *Host {
	if _, dup := k.hosts[name]; dup {
		panic("simx: duplicate host " + name)
	}
	if cores < 1 {
		cores = 1
	}
	h := &Host{
		Name:  name,
		Speed: speed,
		Cores: cores,
		loop: &Link{
			Name:      name + "_loopback",
			Bandwidth: k.LoopbackBandwidth,
			Latency:   k.LoopbackLatency,
		},
	}
	h.loopRt = &Route{Links: []*Link{h.loop}, Latency: h.loop.Latency}
	k.hosts[name] = h
	return h
}

// Host returns the named host or nil.
func (k *Kernel) Host(name string) *Host { return k.hosts[name] }

// Hosts returns the number of declared hosts.
func (k *Kernel) Hosts() int { return len(k.hosts) }

// AddLink declares a network link.
func (k *Kernel) AddLink(name string, bandwidth, latency float64) *Link {
	if _, dup := k.links[name]; dup {
		panic("simx: duplicate link " + name)
	}
	l := &Link{Name: name, Bandwidth: bandwidth, Latency: latency}
	k.links[name] = l
	return l
}

// Link returns the named link or nil.
func (k *Kernel) Link(name string) *Link { return k.links[name] }

// AddRoute declares the route used by transfers from src to dst. Routes are
// directional; callers wanting symmetry add both directions. The route
// latency is the sum of the link latencies.
func (k *Kernel) AddRoute(src, dst string, links []*Link) {
	if k.hosts[src] == nil || k.hosts[dst] == nil {
		panic(fmt.Sprintf("simx: route between undeclared hosts %q -> %q", src, dst))
	}
	lat := 0.0
	for _, l := range links {
		lat += l.Latency
	}
	k.routes[src+"|"+dst] = &Route{Links: links, Latency: lat}
	// Drop any cached resolution of the replaced route.
	delete(k.hosts[src].routeTo, k.hosts[dst])
}

// routeBetween resolves the route for a transfer, falling back to the
// host-private loopback when source and destination coincide.
func (k *Kernel) routeBetween(src, dst *Host) *Route {
	if src == dst {
		return src.loopRt
	}
	if r := src.routeTo[dst]; r != nil {
		return r
	}
	r := k.routes[src.Name+"|"+dst.Name]
	if r == nil {
		panic(fmt.Sprintf("simx: no route from %q to %q", src.Name, dst.Name))
	}
	if src.routeTo == nil {
		src.routeTo = make(map[*Host]*Route)
	}
	src.routeTo[dst] = r
	return r
}
