package simx

import "fmt"

// procState tracks where a process is in its life-cycle.
type procState uint8

const (
	stateCreated procState = iota
	stateRunnable
	stateRunning
	stateBlocked
	stateFinished
)

// Proc is a simulated process: a goroutine scheduled cooperatively by the
// kernel. All simulation calls (Execute, Send, Recv, ...) must be made from
// the process's own body function.
type Proc struct {
	k    *Kernel
	name string
	host *Host

	state procState

	// Block diagnostics, kept as raw data so the hot path never formats
	// strings; DeadlockError renders them lazily.
	blockKind blockKind
	blockComm *Comm   // set for blockComm / blockMatch
	blockVol  float64 // flops or seconds for blockCompute / blockSleep

	// failed is sticky: set when the process's own host fail-stops, so every
	// later simulation call dies with the failure. opFailed delivers a
	// single operation's failure (e.g. the peer's host died mid-transfer) at
	// wake-up; it is consumed by the next return from block.
	failed   *FailedError
	opFailed *FailedError

	// hand is the kernel <-> process handoff channel. Control strictly
	// ping-pongs (the kernel sends to resume the process, the process sends
	// back to yield), so one unbuffered channel serves both directions —
	// the direction is implied by whose turn it is.
	hand chan struct{}

	body func(*Proc)
}

// Spawn creates a process named name running body on host. Processes start
// in spawn order when Run is called. The host must already be declared.
func (k *Kernel) Spawn(name string, host *Host, body func(*Proc)) *Proc {
	if host == nil {
		panic("simx: Spawn with nil host")
	}
	p := &Proc{
		k:     k,
		name:  name,
		host:  host,
		state: stateCreated,
		hand:  make(chan struct{}),
		body:  body,
	}
	k.procs = append(k.procs, p)
	k.living++
	k.runq.Push(p)
	p.state = stateRunnable
	go func() {
		<-p.hand
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, killed := r.(killSignal); killed {
						// A fail-stop kill unwinding the body is a normal
						// death, not a bug: the process is gone, the
						// simulation carries on. Bodies that want to record
						// the failure recover it themselves via FailureOf.
						return
					}
					// Surface the panic as a Run error instead of killing
					// the whole program; the kernel aborts the simulation.
					if p.k.procPanic == nil {
						p.k.procPanic = fmt.Errorf("simx: process %q panicked: %v", p.name, r)
					}
				}
			}()
			p.body(p)
		}()
		p.state = stateFinished
		p.k.living--
		p.hand <- struct{}{}
	}()
	return p
}

// step runs p until it blocks or finishes.
func (k *Kernel) step(p *Proc) {
	if p.state != stateRunnable {
		panic("simx: stepping process that is not runnable: " + p.name)
	}
	p.state = stateRunning
	p.hand <- struct{}{}
	<-p.hand
	if p.state == stateRunning {
		panic("simx: process yielded without blocking or finishing: " + p.name)
	}
}

// blockKind says what a blocked process is waiting for.
type blockKind uint8

const (
	blockNone blockKind = iota
	blockCompute
	blockSleep
	blockMatch
	blockComm
)

// block suspends the calling process until the kernel wakes it. Must be
// called from the process goroutine. A wake-up caused by a fail-stop raises
// the kill signal instead of returning: the blocked operation can never
// complete, so the process unwinds (see FailureOf).
func (p *Proc) block(kind blockKind) {
	p.state = stateBlocked
	p.blockKind = kind
	p.k.blocked++
	p.hand <- struct{}{}
	<-p.hand
	if p.failed != nil {
		panic(killSignal{p.failed})
	}
	if e := p.opFailed; e != nil {
		p.opFailed = nil
		panic(killSignal{e})
	}
}

// blockReason renders the block diagnostics; only called when building a
// DeadlockError, so the simulation hot path pays no formatting cost.
func (p *Proc) blockReason() string {
	switch p.blockKind {
	case blockCompute:
		return fmt.Sprintf("computing %g flops", p.blockVol)
	case blockSleep:
		return fmt.Sprintf("sleeping %gs", p.blockVol)
	case blockMatch:
		return "waiting match on comm"
	case blockComm:
		c := p.blockComm
		return fmt.Sprintf("waiting comm %s->%s (%g bytes)", c.src, c.dst, c.bytes)
	}
	return "blocked"
}

// Name returns the process name.
func (p *Proc) Name() string { return p.name }

// Host returns the host the process runs on.
func (p *Proc) Host() *Host { return p.host }

// Now returns the current simulated time.
func (p *Proc) Now() float64 { return p.k.now }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Execute simulates a computation of the given volume (flops) on the
// process's host, blocking until it completes. Concurrent bursts on the same
// host share its power fairly.
func (p *Proc) Execute(flops float64) {
	p.ensureAlive()
	a := p.k.startCompute(p, p.host, flops)
	a.waiters = append(a.waiters, p)
	p.blockVol = flops
	p.block(blockCompute)
}

// Sleep suspends the process for the given simulated duration.
func (p *Proc) Sleep(seconds float64) {
	p.ensureAlive()
	a := p.k.startSleep(p, seconds)
	a.waiters = append(a.waiters, p)
	p.blockVol = seconds
	p.block(blockSleep)
}

// SleepUntil suspends the process until the absolute simulated time t; it is
// an immediate-completion sleep when t is not in the future. Forked replays
// use it to advance each resumed rank to its recorded park time before the
// post-divergence actions continue.
func (p *Proc) SleepUntil(t float64) {
	d := t - p.k.now
	if d < 0 {
		d = 0
	}
	p.Sleep(d)
}

// Send posts a message of the given size to the mailbox and blocks until
// the transfer has completed (rendezvous + full transmission), matching the
// synchronous MPI_Send semantics used by the replay tool.
func (p *Proc) Send(mailbox string, bytes float64, payload any) {
	p.SendID(p.k.MailboxID(mailbox), bytes, payload)
}

// SendID is Send addressing an interned mailbox; the replay hot path uses it
// to skip name formatting and hashing on every rendezvous.
func (p *Proc) SendID(mailbox MailboxID, bytes float64, payload any) {
	p.ensureAlive()
	c := p.k.post(p, p.k.mailboxAt(mailbox), bytes, payload, false)
	p.WaitComm(c)
	// The handle was never exposed: back to the pool.
	p.k.freeComm(c)
}

// ISend posts a message asynchronously and returns a handle that can be
// waited on. The transfer starts when a matching receive is posted.
func (p *Proc) ISend(mailbox string, bytes float64, payload any) *Comm {
	return p.ISendID(p.k.MailboxID(mailbox), bytes, payload)
}

// ISendID is ISend addressing an interned mailbox.
func (p *Proc) ISendID(mailbox MailboxID, bytes float64, payload any) *Comm {
	p.ensureAlive()
	return p.k.post(p, p.k.mailboxAt(mailbox), bytes, payload, false)
}

// ISendDetached posts a fire-and-forget message: no handle, the kernel
// finishes the transfer in the background.
func (p *Proc) ISendDetached(mailbox string, bytes float64, payload any) {
	p.ISendDetachedID(p.k.MailboxID(mailbox), bytes, payload)
}

// ISendDetachedID is ISendDetached addressing an interned mailbox.
func (p *Proc) ISendDetachedID(mailbox MailboxID, bytes float64, payload any) {
	p.ensureAlive()
	p.k.post(p, p.k.mailboxAt(mailbox), bytes, payload, true)
}

// Recv blocks until a message is received from the mailbox and returns its
// payload.
func (p *Proc) Recv(mailbox string) any {
	return p.RecvID(p.k.MailboxID(mailbox))
}

// RecvID is Recv addressing an interned mailbox.
func (p *Proc) RecvID(mailbox MailboxID) any {
	p.ensureAlive()
	c := p.k.postRecv(p, p.k.mailboxAt(mailbox))
	p.WaitComm(c)
	payload := c.payload
	p.k.freeComm(c)
	return payload
}

// IRecv posts a receive request asynchronously and returns a handle.
func (p *Proc) IRecv(mailbox string) *Comm {
	return p.IRecvID(p.k.MailboxID(mailbox))
}

// IRecvID is IRecv addressing an interned mailbox.
func (p *Proc) IRecvID(mailbox MailboxID) *Comm {
	p.ensureAlive()
	return p.k.postRecv(p, p.k.mailboxAt(mailbox))
}

// ReleaseComm hands a completed ISend/IRecv handle back to the kernel pool.
// Purely an optimisation: callers that keep querying the handle simply never
// release it and the garbage collector takes over. The handle must not be
// used after the call, and a handle may be released at most once.
func (p *Proc) ReleaseComm(c *Comm) {
	if c == nil || !c.done {
		return
	}
	p.k.freeComm(c)
}

// WaitComm blocks until the communication completes. Safe to call on an
// already-completed handle.
func (p *Proc) WaitComm(c *Comm) {
	if c == nil {
		panic("simx: WaitComm(nil)")
	}
	p.ensureAlive()
	for !c.matched() {
		// The comm has no activity yet: the peer has not posted. Block on
		// the request itself; the mailbox wakes us at match time, then we
		// wait for the transfer.
		c.addMatchWaiter(p)
		p.blockComm = c
		p.block(blockMatch)
	}
	if c.done {
		if c.failed != nil {
			panic(killSignal{c.failed})
		}
		return
	}
	c.act.waiters = append(c.act.waiters, p)
	p.blockComm = c
	p.block(blockComm)
}
