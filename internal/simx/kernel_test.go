package simx

import (
	"math"
	"testing"
)

const eps = 1e-9

func close(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-6*math.Max(math.Abs(a), math.Abs(b))
}

// twoHostKernel builds the standard two-node test platform: 1 Gflop/s
// single-core hosts joined by a symmetric 1e8 B/s, 1 ms link.
func twoHostKernel() (*Kernel, *Host, *Host) {
	k := New()
	a := k.AddHost("a", 1e9, 1)
	b := k.AddHost("b", 1e9, 1)
	l := k.AddLink("ab", 1e8, 1e-3)
	k.AddRoute("a", "b", []*Link{l})
	k.AddRoute("b", "a", []*Link{l})
	return k, a, b
}

func TestSingleComputeDuration(t *testing.T) {
	k := New()
	h := k.AddHost("h", 2e9, 1)
	k.Spawn("p", h, func(p *Proc) {
		p.Execute(4e9) // 4 Gflop at 2 Gflop/s = 2 s
	})
	end, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !close(end, 2.0) {
		t.Fatalf("makespan = %g, want 2.0", end)
	}
}

func TestComputeFairSharingSingleCore(t *testing.T) {
	k := New()
	h := k.AddHost("h", 1e9, 1)
	for i := 0; i < 2; i++ {
		k.Spawn("p", h, func(p *Proc) {
			p.Execute(1e9)
		})
	}
	end, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Two 1 Gflop tasks sharing a 1 Gflop/s core: both finish at t=2.
	if !close(end, 2.0) {
		t.Fatalf("makespan = %g, want 2.0", end)
	}
}

func TestComputeMultiCoreNoContention(t *testing.T) {
	k := New()
	h := k.AddHost("h", 1e9, 4)
	for i := 0; i < 4; i++ {
		k.Spawn("p", h, func(p *Proc) {
			p.Execute(1e9)
		})
	}
	end, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !close(end, 1.0) {
		t.Fatalf("makespan = %g, want 1.0 (4 tasks on 4 cores)", end)
	}
}

func TestFoldingLinearSlowdown(t *testing.T) {
	// The mechanism behind Table 2: folding x processes on one core slows
	// execution down by ~x.
	for _, fold := range []int{2, 4, 8} {
		k := New()
		h := k.AddHost("h", 1e9, 1)
		for i := 0; i < fold; i++ {
			k.Spawn("p", h, func(p *Proc) {
				p.Execute(1e9)
			})
		}
		end, err := k.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !close(end, float64(fold)) {
			t.Fatalf("fold=%d: makespan = %g, want %d", fold, end, fold)
		}
	}
}

func TestStaggeredComputeSharing(t *testing.T) {
	// p1 computes alone for 1s, then shares with p2 (arriving at t=1).
	// p1: 2 Gflop total: 1 Gflop done alone, remaining 1 Gflop at half rate
	// = 2 s, finishing at t=3. p2: 1 Gflop at half rate until p1 leaves...
	k := New()
	h := k.AddHost("h", 1e9, 1)
	var end1, end2 float64
	k.Spawn("p1", h, func(p *Proc) {
		p.Execute(2e9)
		end1 = p.Now()
	})
	k.Spawn("p2", h, func(p *Proc) {
		p.Sleep(1.0)
		p.Execute(1e9)
		end2 = p.Now()
	})
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// From t=1 both share: p1 needs 1 Gflop, p2 needs 1 Gflop, both at
	// 0.5 Gflop/s -> both complete at t=3.
	if !close(end1, 3.0) || !close(end2, 3.0) {
		t.Fatalf("end1=%g end2=%g, want 3.0 both", end1, end2)
	}
}

func TestPointToPointCommDuration(t *testing.T) {
	k, _, _ := twoHostKernel()
	ha, hb := k.Host("a"), k.Host("b")
	var recvEnd float64
	k.Spawn("sender", ha, func(p *Proc) {
		p.Send("mb", 1e8, "hello")
	})
	k.Spawn("receiver", hb, func(p *Proc) {
		pl := p.Recv("mb")
		if pl != "hello" {
			t.Errorf("payload = %v", pl)
		}
		recvEnd = p.Now()
	})
	end, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 1e8 bytes at 1e8 B/s + 1 ms latency = 1.001 s.
	if !close(end, 1.001) || !close(recvEnd, 1.001) {
		t.Fatalf("end = %g, recvEnd = %g, want 1.001", end, recvEnd)
	}
}

func TestRendezvousStartsAtMatchTime(t *testing.T) {
	k, _, _ := twoHostKernel()
	ha, hb := k.Host("a"), k.Host("b")
	k.Spawn("sender", ha, func(p *Proc) {
		p.Send("mb", 1e8, nil)
	})
	k.Spawn("receiver", hb, func(p *Proc) {
		p.Sleep(5)
		p.Recv("mb")
	})
	end, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Transfer cannot start before the receive is posted at t=5.
	if !close(end, 6.001) {
		t.Fatalf("end = %g, want 6.001", end)
	}
}

func TestTwoFlowsShareLink(t *testing.T) {
	k := New()
	hosts := make([]*Host, 4)
	for i, n := range []string{"a", "b", "c", "d"} {
		hosts[i] = k.AddHost(n, 1e9, 1)
	}
	l := k.AddLink("shared", 1e8, 0)
	k.AddRoute("a", "b", []*Link{l})
	k.AddRoute("c", "d", []*Link{l})
	k.Spawn("s1", hosts[0], func(p *Proc) { p.Send("m1", 1e8, nil) })
	k.Spawn("r1", hosts[1], func(p *Proc) { p.Recv("m1") })
	k.Spawn("s2", hosts[2], func(p *Proc) { p.Send("m2", 1e8, nil) })
	k.Spawn("r2", hosts[3], func(p *Proc) { p.Recv("m2") })
	end, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Two 1e8-byte flows over one 1e8 B/s link: each at 5e7 B/s -> 2 s.
	if !close(end, 2.0) {
		t.Fatalf("end = %g, want 2.0", end)
	}
}

func TestFlowDepartureSpeedsUpRemainder(t *testing.T) {
	k := New()
	for _, n := range []string{"a", "b", "c", "d"} {
		k.AddHost(n, 1e9, 1)
	}
	l := k.AddLink("shared", 1e8, 0)
	k.AddRoute("a", "b", []*Link{l})
	k.AddRoute("c", "d", []*Link{l})
	k.Spawn("s1", k.Host("a"), func(p *Proc) { p.Send("m1", 0.5e8, nil) })
	k.Spawn("r1", k.Host("b"), func(p *Proc) { p.Recv("m1") })
	k.Spawn("s2", k.Host("c"), func(p *Proc) { p.Send("m2", 1e8, nil) })
	k.Spawn("r2", k.Host("d"), func(p *Proc) { p.Recv("m2") })
	end, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Flow 1 (0.5e8 B) and flow 2 (1e8 B) share: each 5e7 B/s. Flow 1 ends
	// at t=1 having moved 0.5e8. Flow 2 then has 0.5e8 left at full 1e8 B/s:
	// +0.5 s. Total 1.5 s.
	if !close(end, 1.5) {
		t.Fatalf("end = %g, want 1.5", end)
	}
}

func TestMultiHopRouteBottleneck(t *testing.T) {
	k := New()
	k.AddHost("a", 1e9, 1)
	k.AddHost("b", 1e9, 1)
	fast := k.AddLink("fast", 1e9, 1e-3)
	slow := k.AddLink("slow", 1e7, 2e-3)
	k.AddRoute("a", "b", []*Link{fast, slow, fast})
	k.Spawn("s", k.Host("a"), func(p *Proc) { p.Send("m", 1e7, nil) })
	k.Spawn("r", k.Host("b"), func(p *Proc) { p.Recv("m") })
	end, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Latency = 1e-3 + 2e-3 + 1e-3 = 4 ms; bandwidth limited by slow link:
	// 1e7 / 1e7 = 1 s.
	if !close(end, 1.004) {
		t.Fatalf("end = %g, want 1.004", end)
	}
}

func TestLoopbackSameHostComm(t *testing.T) {
	k := New()
	k.LoopbackBandwidth = 1e9
	k.LoopbackLatency = 0
	h := k.AddHost("h", 1e9, 2)
	k.Spawn("s", h, func(p *Proc) { p.Send("m", 1e9, nil) })
	k.Spawn("r", h, func(p *Proc) { p.Recv("m") })
	end, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !close(end, 1.0) {
		t.Fatalf("end = %g, want 1.0 (loopback)", end)
	}
}

func TestISendIRecvWait(t *testing.T) {
	k, _, _ := twoHostKernel()
	var overlapped float64
	k.Spawn("s", k.Host("a"), func(p *Proc) {
		c := p.ISend("m", 1e8, 42)
		p.Execute(2e9) // 2 s of overlapping compute
		p.WaitComm(c)
		overlapped = p.Now()
	})
	k.Spawn("r", k.Host("b"), func(p *Proc) {
		c := p.IRecv("m")
		p.WaitComm(c)
		if c.Payload().(int) != 42 {
			t.Errorf("payload = %v", c.Payload())
		}
	})
	end, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Comm takes 1.001 s overlapped with 2 s compute: sender done at 2 s.
	if !close(overlapped, 2.0) || !close(end, 2.0) {
		t.Fatalf("overlapped = %g end = %g, want 2.0", overlapped, end)
	}
}

func TestDetachedSend(t *testing.T) {
	k, _, _ := twoHostKernel()
	var sendReturned float64
	k.Spawn("s", k.Host("a"), func(p *Proc) {
		p.ISendDetached("m", 1e8, nil)
		sendReturned = p.Now()
	})
	k.Spawn("r", k.Host("b"), func(p *Proc) {
		p.Recv("m")
	})
	end, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if sendReturned != 0 {
		t.Fatalf("detached send blocked until %g", sendReturned)
	}
	if !close(end, 1.001) {
		t.Fatalf("end = %g, want 1.001", end)
	}
}

func TestDeadlockDetection(t *testing.T) {
	k, _, _ := twoHostKernel()
	k.Spawn("r", k.Host("a"), func(p *Proc) {
		p.Recv("never") // nobody sends here
	})
	_, err := k.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("expected DeadlockError, got %v", err)
	}
	if len(de.Blocked) != 1 {
		t.Fatalf("blocked = %v", de.Blocked)
	}
}

func TestSleepAdvancesClock(t *testing.T) {
	k := New()
	h := k.AddHost("h", 1e9, 1)
	k.Spawn("p", h, func(p *Proc) {
		p.Sleep(1.5)
		p.Sleep(0.5)
	})
	end, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !close(end, 2.0) {
		t.Fatalf("end = %g, want 2.0", end)
	}
}

func TestZeroVolumeOperations(t *testing.T) {
	k, _, _ := twoHostKernel()
	k.Spawn("s", k.Host("a"), func(p *Proc) {
		p.Execute(0)
		p.Send("m", 0, nil)
	})
	k.Spawn("r", k.Host("b"), func(p *Proc) {
		p.Recv("m")
	})
	end, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Zero-byte message still pays the route latency.
	if !close(end, 1e-3) {
		t.Fatalf("end = %g, want 1e-3", end)
	}
}

func TestRateModelAppliedToComm(t *testing.T) {
	k, _, _ := twoHostKernel()
	k.SetRateModel(func(bytes float64) (float64, float64) {
		return 2.0, 0.5 // double latency, halve effective bandwidth
	})
	k.Spawn("s", k.Host("a"), func(p *Proc) { p.Send("m", 1e8, nil) })
	k.Spawn("r", k.Host("b"), func(p *Proc) { p.Recv("m") })
	end, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Latency 2*1e-3, bandwidth 0.5*1e8 -> 2.002 s.
	if !close(end, 2.002) {
		t.Fatalf("end = %g, want 2.002", end)
	}
}

type recordingTracer struct {
	computes int
	comms    int
	lastEnd  float64
}

func (r *recordingTracer) Compute(proc, host string, flops, start, end float64) {
	r.computes++
	r.lastEnd = end
}
func (r *recordingTracer) Comm(src, dst string, bytes, start, end float64) {
	r.comms++
	r.lastEnd = end
}

func TestTracerObservesActivities(t *testing.T) {
	k, _, _ := twoHostKernel()
	tr := &recordingTracer{}
	k.SetTracer(tr)
	k.Spawn("s", k.Host("a"), func(p *Proc) {
		p.Execute(1e9)
		p.Send("m", 1e8, nil)
	})
	k.Spawn("r", k.Host("b"), func(p *Proc) { p.Recv("m") })
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if tr.computes != 1 || tr.comms != 1 {
		t.Fatalf("tracer saw %d computes, %d comms", tr.computes, tr.comms)
	}
	if !close(tr.lastEnd, 2.001) {
		t.Fatalf("last end = %g, want 2.001", tr.lastEnd)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() float64 {
		k := New()
		n := 8
		hosts := make([]*Host, n)
		l := k.AddLink("bb", 1.25e8, 16.67e-6)
		for i := 0; i < n; i++ {
			hosts[i] = k.AddHost(string(rune('a'+i)), 1e9, 1)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j {
					k.AddRoute(hosts[i].Name, hosts[j].Name, []*Link{l})
				}
			}
		}
		// Token ring with computation, as in Figure 1 of the paper.
		for i := 0; i < n; i++ {
			i := i
			k.Spawn(hosts[i].Name, hosts[i], func(p *Proc) {
				next := hosts[(i+1)%n].Name
				prev := hosts[(i-1+n)%n].Name
				for iter := 0; iter < 4; iter++ {
					if i == 0 {
						p.Execute(1e6)
						p.Send("to_"+next, 1e6, nil)
						p.Recv("to_" + hosts[i].Name)
					} else {
						p.Recv("to_" + hosts[i].Name)
						p.Execute(1e6)
						p.Send("to_"+next, 1e6, nil)
					}
				}
				_ = prev
			})
		}
		end, err := k.Run()
		if err != nil {
			t.Fatal(err)
		}
		return end
	}
	first := run()
	for i := 0; i < 3; i++ {
		if again := run(); again != first {
			t.Fatalf("non-deterministic: %g vs %g", again, first)
		}
	}
	if first <= 0 {
		t.Fatal("ring simulation returned non-positive makespan")
	}
}

func TestManyProcessesScale(t *testing.T) {
	// Smoke test: 256 processes ping-ponging do not deadlock or race.
	k := New()
	l := k.AddLink("bb", 1e9, 1e-6)
	n := 256
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = "h" + string(rune('0'+i/100)) + string(rune('0'+(i/10)%10)) + string(rune('0'+i%10))
		k.AddHost(names[i], 1e9, 1)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				k.AddRoute(names[i], names[j], []*Link{l})
			}
		}
	}
	for i := 0; i < n; i += 2 {
		a, b := names[i], names[i+1]
		k.Spawn(a, k.Host(a), func(p *Proc) {
			p.Send("mb_"+b, 1e6, nil)
			p.Recv("mb_" + a)
		})
		k.Spawn(b, k.Host(b), func(p *Proc) {
			p.Recv("mb_" + b)
			p.Send("mb_"+a, 1e6, nil)
		})
	}
	end, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if end <= 0 {
		t.Fatal("zero makespan")
	}
}
