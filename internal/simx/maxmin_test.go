package simx

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// buildFlows creates synthetic comm activities over the given links.
func buildFlows(routes [][]*Link) []*activity {
	flows := make([]*activity, 0, len(routes))
	for _, r := range routes {
		flows = append(flows, &activity{kind: actComm, links: r, bwFactor: 1})
	}
	return flows
}

func TestMaxMinSingleFlowGetsFullLink(t *testing.T) {
	l := &Link{Name: "l", Bandwidth: 100}
	flows := buildFlows([][]*Link{{l}})
	var s maxMinSolver
	s.solve(flows)
	for _, a := range flows {
		if !close(a.allocated, 100) {
			t.Fatalf("allocated = %g, want 100", a.allocated)
		}
	}
}

func TestMaxMinEqualSharing(t *testing.T) {
	l := &Link{Name: "l", Bandwidth: 90}
	flows := buildFlows([][]*Link{{l}, {l}, {l}})
	var s maxMinSolver
	s.solve(flows)
	for _, a := range flows {
		if !close(a.allocated, 30) {
			t.Fatalf("allocated = %g, want 30", a.allocated)
		}
	}
}

func TestMaxMinTextbookTwoLinks(t *testing.T) {
	// Classic example: flow 0 crosses links A and B, flow 1 crosses A,
	// flow 2 crosses B. A has 10, B has 20.
	// Progressive filling: A is bottleneck (10/2 = 5 < 20/2 = 10):
	// flows 0,1 get 5. B has 15 left for flow 2: 15.
	la := &Link{Name: "A", Bandwidth: 10}
	lb := &Link{Name: "B", Bandwidth: 20}
	f0 := &activity{kind: actComm, links: []*Link{la, lb}, bwFactor: 1}
	f1 := &activity{kind: actComm, links: []*Link{la}, bwFactor: 1}
	f2 := &activity{kind: actComm, links: []*Link{lb}, bwFactor: 1}
	flows := []*activity{f0, f1, f2}
	var s maxMinSolver
	s.solve(flows)
	if !close(f0.allocated, 5) || !close(f1.allocated, 5) || !close(f2.allocated, 15) {
		t.Fatalf("allocations = %g, %g, %g; want 5, 5, 15",
			f0.allocated, f1.allocated, f2.allocated)
	}
}

func TestMaxMinLongFlowPenalised(t *testing.T) {
	// A flow crossing two congested links gets the min of both fair shares.
	la := &Link{Name: "A", Bandwidth: 10}
	lb := &Link{Name: "B", Bandwidth: 4}
	long := &activity{kind: actComm, links: []*Link{la, lb}, bwFactor: 1}
	short := &activity{kind: actComm, links: []*Link{la}, bwFactor: 1}
	flows := []*activity{long, short}
	var s maxMinSolver
	s.solve(flows)
	// B alone constrains long to 4; A then gives short 10-4=6.
	if !close(long.allocated, 4) || !close(short.allocated, 6) {
		t.Fatalf("long = %g short = %g; want 4, 6", long.allocated, short.allocated)
	}
}

// Property 1: no link's capacity is exceeded.
// Property 2: every flow's allocation is positive.
// Property 3 (max-min): every flow crosses at least one saturated link
// where it is among the maximally-allocated flows (otherwise it could grow).
func TestMaxMinInvariants(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nLinks := 1 + rng.Intn(6)
		links := make([]*Link, nLinks)
		for i := range links {
			links[i] = &Link{Name: "l", Bandwidth: 1 + rng.Float64()*99}
		}
		nFlows := 1 + rng.Intn(10)
		routes := make([][]*Link, nFlows)
		for i := range routes {
			used := rng.Perm(nLinks)[:1+rng.Intn(nLinks)]
			for _, li := range used {
				routes[i] = append(routes[i], links[li])
			}
		}
		flows := buildFlows(routes)
		var s maxMinSolver
		s.solve(flows)

		// Property 2.
		for _, a := range flows {
			if a.allocated <= 0 {
				return false
			}
		}
		// Property 1.
		load := make(map[*Link]float64)
		for _, a := range flows {
			for _, l := range a.links {
				load[l] += a.allocated
			}
		}
		for l, used := range load {
			if used > l.Bandwidth*(1+1e-9) {
				return false
			}
		}
		// Property 3.
		for _, a := range flows {
			bottlenecked := false
			for _, l := range a.links {
				saturated := load[l] >= l.Bandwidth*(1-1e-9)
				if !saturated {
					continue
				}
				isMax := true
				for _, b := range flows {
					if b == a {
						continue
					}
					for _, bl := range b.links {
						if bl == l && b.allocated > a.allocated*(1+1e-9) {
							isMax = false
						}
					}
				}
				if isMax {
					bottlenecked = true
					break
				}
			}
			if !bottlenecked {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMaxMinRepeatedSolveReusesState(t *testing.T) {
	// The solver is reused across reshares; make sure state resets cleanly.
	l := &Link{Name: "l", Bandwidth: 100}
	var s maxMinSolver
	for i := 1; i <= 5; i++ {
		routes := make([][]*Link, i)
		for j := range routes {
			routes[j] = []*Link{l}
		}
		flows := buildFlows(routes)
		s.solve(flows)
		for _, a := range flows {
			if !close(a.allocated, 100/float64(i)) {
				t.Fatalf("round %d: allocated = %g, want %g", i, a.allocated, 100/float64(i))
			}
		}
	}
}
