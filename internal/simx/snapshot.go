package simx

import "fmt"

// KernelSnapshot captures a kernel at a quiescent instant: no live process,
// no runnable process, no in-flight activity, no pending rendezvous — the
// state a simulation reaches when every process has parked (returned from its
// body) and only fault timers may remain scheduled. At such an instant the
// whole mutable state of the simulation collapses to the clock plus the
// static platform, which is what makes a snapshot a handful of scalars
// instead of a deep copy, and makes Restore deterministic: a restored kernel
// is indistinguishable from a freshly built one.
//
// The sweep engine uses the pair to share work across scenarios that diverge
// only late: a donor kernel replays the common prefix, parks, snapshots, and
// forked runs resume from the recorded park times (Proc.SleepUntil).
type KernelSnapshot struct {
	// Time is the simulated instant at which the kernel quiesced — the
	// completion time of the last prefix activity.
	Time float64

	// Platform shape captured for validation: Restore refuses a snapshot
	// taken from a kernel with a different host/link census.
	hosts, links int
}

// Snapshot validates that the kernel is quiescent and captures it. When
// reuse is non-nil it is filled in and returned instead of a fresh
// allocation, so steady-state snapshot/restore cycles allocate nothing
// (see BenchmarkKernelSnapshotRestore).
func (k *Kernel) Snapshot(reuse *KernelSnapshot) (*KernelSnapshot, error) {
	if err := k.quiescent(); err != nil {
		return nil, err
	}
	s := reuse
	if s == nil {
		s = new(KernelSnapshot)
	}
	s.Time = k.now
	s.hosts = len(k.hostList)
	s.links = len(k.linkList)
	return s, nil
}

// Restore rewinds a quiescent kernel to the state of a freshly built one:
// clock at zero, empty event queue (pooled storage kept), no processes, all
// fault effects undone and every resource back at its declared capacity. The
// platform (hosts, links, routes, interned mailboxes) is retained. The
// caller re-spawns processes and re-injects fault schedules exactly as it
// would on a new kernel; resumed processes advance to their recorded park
// times with Proc.SleepUntil.
//
// The tracer is cleared — a forked run installs its own observer. Pool
// free lists, route caches and the reshare epoch counters are deliberately
// kept: epochs are monotonic markers on pooled objects and rewinding them
// would let a stale mark alias a fresh traversal.
func (k *Kernel) Restore(s *KernelSnapshot) error {
	if s == nil {
		return fmt.Errorf("simx: Restore of a nil snapshot")
	}
	if s.hosts != len(k.hostList) || s.links != len(k.linkList) {
		return fmt.Errorf("simx: Restore of a snapshot from a different platform (%d hosts/%d links, kernel has %d/%d)",
			s.hosts, s.links, len(k.hostList), len(k.linkList))
	}
	if err := k.quiescent(); err != nil {
		return err
	}
	k.queue.Reset()
	k.pendingTimers = 0
	k.runq.Reset()
	for i := range k.procs {
		k.procs[i] = nil
	}
	k.procs = k.procs[:0]
	k.blocked = 0
	k.living = 0
	k.procPanic = nil
	k.flows = k.flows[:0]
	k.faultsActive = false
	for i := range k.doomed {
		k.doomed[i] = nil
	}
	k.doomed = k.doomed[:0]
	k.tracer = nil
	for _, h := range k.hostList {
		h.Speed = h.baseSpeed
	}
	for _, l := range k.linkList {
		l.Bandwidth = l.baseBandwidth
	}
	k.now = 0
	return nil
}

// quiescent reports why the kernel is not at a snapshotable instant, or nil.
// Pending fault timers are allowed (Run itself terminates with them still
// queued when a fault is scheduled past the natural end of the simulation);
// everything else must be drained.
func (k *Kernel) quiescent() error {
	switch {
	case k.living != 0:
		return fmt.Errorf("simx: snapshot with %d live processes", k.living)
	case k.blocked != 0:
		return fmt.Errorf("simx: snapshot with %d blocked processes", k.blocked)
	case !k.runq.Empty():
		return fmt.Errorf("simx: snapshot with %d runnable processes", k.runq.Len())
	case k.procPanic != nil:
		return fmt.Errorf("simx: snapshot after process panic: %w", k.procPanic)
	case len(k.flows) != 0:
		return fmt.Errorf("simx: snapshot with %d in-flight transfers", len(k.flows))
	case k.queue.Len() != k.pendingTimers:
		return fmt.Errorf("simx: snapshot with %d non-timer events pending", k.queue.Len()-k.pendingTimers)
	}
	for _, h := range k.hostList {
		if h.off {
			return fmt.Errorf("simx: snapshot with fail-stopped host %q", h.Name)
		}
		if len(h.computes) != 0 {
			return fmt.Errorf("simx: snapshot with %d running computes on %q", len(h.computes), h.Name)
		}
	}
	for _, l := range k.linkList {
		if l.off {
			return fmt.Errorf("simx: snapshot with fail-stopped link %q", l.Name)
		}
	}
	for _, mb := range k.mboxByID {
		if !mb.sends.Empty() || !mb.recvs.Empty() {
			return fmt.Errorf("simx: snapshot with pending rendezvous in mailbox %q", mb.name)
		}
	}
	return nil
}
