package simx

// maxMinSolver computes the max-min fair bandwidth allocation of a set of
// flows over the links they cross. This is the analytical contention model
// SimGrid validates against the GTNetS packet-level simulator: at every
// instant, each flow receives the largest share such that no link capacity
// is exceeded and no flow can gain without another losing.
//
// Algorithm (progressive filling): repeatedly find the most constrained link
// — the one whose remaining capacity divided by its number of unallocated
// flows is smallest — freeze that fair share onto those flows, subtract it
// from every link they cross, and continue until every flow is allocated.
type maxMinSolver struct {
	links []*Link
	cap   []float64 // remaining capacity per link
	nflow []int     // unallocated flows per link
}

// solve assigns activity.allocated for every flow in the set.
func (s *maxMinSolver) solve(flows map[*activity]struct{}) {
	// Collect the links in use and index them.
	s.links = s.links[:0]
	for a := range flows {
		for _, l := range a.links {
			l.idx = -1
		}
	}
	for a := range flows {
		for _, l := range a.links {
			if l.idx == -1 {
				l.idx = len(s.links)
				s.links = append(s.links, l)
			}
		}
	}
	if cap(s.cap) < len(s.links) {
		s.cap = make([]float64, len(s.links))
		s.nflow = make([]int, len(s.links))
	}
	s.cap = s.cap[:len(s.links)]
	s.nflow = s.nflow[:len(s.links)]
	for i, l := range s.links {
		s.cap[i] = l.Bandwidth
		s.nflow[i] = 0
	}

	unalloc := make(map[*activity]struct{}, len(flows))
	for a := range flows {
		a.allocated = 0
		if len(a.links) == 0 {
			// Should not happen (loopback always provides a link), but keep
			// the solver total: an unconstrained flow gets "infinite" share
			// represented by the largest link bandwidth seen.
			continue
		}
		unalloc[a] = struct{}{}
		for _, l := range a.links {
			s.nflow[l.idx]++
		}
	}

	for len(unalloc) > 0 {
		// Find the bottleneck link.
		best := -1
		bestShare := 0.0
		for i := range s.links {
			if s.nflow[i] == 0 {
				continue
			}
			share := s.cap[i] / float64(s.nflow[i])
			if best == -1 || share < bestShare {
				best = i
				bestShare = share
			}
		}
		if best == -1 {
			break
		}
		// Freeze the share onto every unallocated flow crossing it.
		for a := range unalloc {
			crosses := false
			for _, l := range a.links {
				if l.idx == best {
					crosses = true
					break
				}
			}
			if !crosses {
				continue
			}
			a.allocated = bestShare
			for _, l := range a.links {
				s.cap[l.idx] -= bestShare
				if s.cap[l.idx] < 0 {
					s.cap[l.idx] = 0
				}
				s.nflow[l.idx]--
			}
			delete(unalloc, a)
		}
	}
}
