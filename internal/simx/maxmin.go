package simx

import "math"

// maxMinSolver computes the max-min fair bandwidth allocation of a set of
// flows over the links they cross. This is the analytical contention model
// SimGrid validates against the GTNetS packet-level simulator: at every
// instant, each flow receives the largest share such that no link capacity
// is exceeded and no flow can gain without another losing.
//
// Algorithm (progressive filling): repeatedly find the most constrained link
// — the one whose remaining capacity divided by its number of unallocated
// flows is smallest — freeze that fair share onto those flows, subtract it
// from every link they cross, and continue until every flow is allocated.
//
// The solver iterates flows strictly in the order of the slice it is given,
// which the kernel keeps in flow start order; together with the persistent
// scratch buffers this makes every solve allocation-free and bit-for-bit
// reproducible run to run (floating-point accumulation in cap[i] happens in
// one fixed order).
type maxMinSolver struct {
	links   []*Link
	cap     []float64   // remaining capacity per link
	nflow   []int       // unallocated flows per link
	unalloc []*activity // flows not yet frozen, in input order
}

// solve assigns activity.allocated for every flow in the slice. The flow
// order determines the floating-point accumulation order and must be stable
// across runs for deterministic simulations.
func (s *maxMinSolver) solve(flows []*activity) {
	// Collect the links in use and index them.
	s.links = s.links[:0]
	for _, a := range flows {
		for _, l := range a.links {
			l.idx = -1
		}
	}
	maxBW := 0.0
	for _, a := range flows {
		for _, l := range a.links {
			if l.idx == -1 {
				l.idx = len(s.links)
				s.links = append(s.links, l)
				if l.Bandwidth > maxBW {
					maxBW = l.Bandwidth
				}
			}
		}
	}
	if cap(s.cap) < len(s.links) {
		s.cap = make([]float64, len(s.links))
		s.nflow = make([]int, len(s.links))
	}
	s.cap = s.cap[:len(s.links)]
	s.nflow = s.nflow[:len(s.links)]
	for i, l := range s.links {
		s.cap[i] = l.Bandwidth
		s.nflow[i] = 0
	}

	s.unalloc = s.unalloc[:0]
	for _, a := range flows {
		if len(a.links) == 0 {
			// Should not happen (loopback always provides a link), but keep
			// the solver total: an unconstrained flow gets "infinite" share
			// represented by the largest link bandwidth seen, so the
			// transfer completes instead of hanging at a zero rate.
			a.allocated = maxBW
			if a.allocated == 0 {
				a.allocated = math.MaxFloat64
			}
			continue
		}
		a.allocated = 0
		s.unalloc = append(s.unalloc, a)
		for _, l := range a.links {
			s.nflow[l.idx]++
		}
	}

	for len(s.unalloc) > 0 {
		// Find the bottleneck link. A fatpipe link offers every flow its
		// full remaining bandwidth (flows do not share it), so its fair
		// share is cap itself, independent of the flow count.
		best := -1
		bestShare := 0.0
		for i := range s.links {
			if s.nflow[i] == 0 {
				continue
			}
			share := s.cap[i]
			if s.links[i].Sharing == SharingShared {
				share /= float64(s.nflow[i])
			}
			if best == -1 || share < bestShare {
				best = i
				bestShare = share
			}
		}
		if best == -1 {
			break
		}
		// Freeze the share onto every unallocated flow crossing it,
		// compacting the remaining flows in place so their relative order
		// (and hence the arithmetic order of later rounds) is preserved.
		kept := s.unalloc[:0]
		for _, a := range s.unalloc {
			crosses := false
			for _, l := range a.links {
				if l.idx == best {
					crosses = true
					break
				}
			}
			if !crosses {
				kept = append(kept, a)
				continue
			}
			a.allocated = bestShare
			for _, l := range a.links {
				// Frozen shares consume capacity only on shared links; a
				// fatpipe keeps its full bandwidth on offer to every flow.
				if l.Sharing == SharingShared {
					s.cap[l.idx] -= bestShare
					if s.cap[l.idx] < 0 {
						s.cap[l.idx] = 0
					}
				}
				s.nflow[l.idx]--
			}
		}
		// Drop the trailing references so freed flows are not pinned.
		for i := len(kept); i < len(s.unalloc); i++ {
			s.unalloc[i] = nil
		}
		s.unalloc = kept
	}
}
