package simx

import (
	"math"
	"testing"
)

// TestLazyRescheduleMatchesEager compares the default lazy rescheduling path
// against the eager reference (cancel+push on every reshare) on the
// contended ring: the solved rates are identical, so every traced time must
// agree to within a few ulps — the lazy path merely keeps an earlier,
// mathematically equal expression of the same completion instant.
func TestLazyRescheduleMatchesEager(t *testing.T) {
	const maxUlps = 8
	for _, n := range []int{2, 3, 8, 16} {
		kl, trl := ringKernel(n, false)
		endL, errL := kl.Run()
		ke, tre := ringKernel(n, false)
		ke.SetEagerReschedule(true)
		endE, errE := ke.Run()
		if errL != nil || errE != nil {
			t.Fatalf("n=%d: errs %v / %v", n, errL, errE)
		}
		if ulpsApart(endL, endE) > maxUlps {
			t.Fatalf("n=%d: lazy makespan %v != eager %v (diff %g)",
				n, endL, endE, math.Abs(endL-endE))
		}
		sl, se := trl.sorted(), tre.sorted()
		if len(sl) != len(se) {
			t.Fatalf("n=%d: %d events (lazy) vs %d (eager)", n, len(sl), len(se))
		}
		for i := range sl {
			l, e := sl[i], se[i]
			if l.kind != e.kind || l.a != e.a || l.b != e.b || l.vol != e.vol ||
				ulpsApart(l.start, e.start) > maxUlps || ulpsApart(l.end, e.end) > maxUlps {
				t.Fatalf("n=%d event %d: lazy %+v != eager %+v", n, i, l, e)
			}
		}
		// With only two hosts every transition really does move every rate;
		// from three on, some co-solved flows keep their share and the lazy
		// path must have elided their reschedules.
		if n > 2 && kl.LazySkips() == 0 {
			t.Fatalf("n=%d: lazy path recorded no skipped reschedules", n)
		}
		if ke.LazySkips() != 0 {
			t.Fatalf("n=%d: eager path skipped %d reschedules", n, ke.LazySkips())
		}
	}
}

// TestLazyRescheduleRandomTopologies repeats the comparison on the random
// multi-hop topologies of the partial-reshare suite, where components merge
// and split and many transitions leave most rates untouched.
func TestLazyRescheduleRandomTopologies(t *testing.T) {
	const maxUlps = 16
	for seed := int64(1); seed <= 10; seed++ {
		endL, evL := randomContendedRun(t, seed, false)
		endE, evE := randomContendedEagerRun(t, seed)
		if ulpsApart(endL, endE) > maxUlps {
			t.Fatalf("seed %d: lazy makespan %v != eager %v", seed, endL, endE)
		}
		if len(evL) != len(evE) {
			t.Fatalf("seed %d: %d events (lazy) vs %d (eager)", seed, len(evL), len(evE))
		}
		for i := range evL {
			l, e := evL[i], evE[i]
			if l.kind != e.kind || l.a != e.a || l.b != e.b || l.vol != e.vol ||
				ulpsApart(l.start, e.start) > maxUlps || ulpsApart(l.end, e.end) > maxUlps {
				t.Fatalf("seed %d event %d: lazy %+v != eager %+v", seed, i, l, e)
			}
		}
	}
}

// pumpOne fires the next queued event against the kernel, test-side.
func pumpOne(t *testing.T, k *Kernel) {
	t.Helper()
	ev := k.queue.Pop()
	if ev == nil {
		t.Fatal("event queue drained early")
	}
	k.now = ev.Time
	k.handleEvent(ev)
	k.queue.Recycle(ev)
}

// TestRateEpochStamping drives the bookkeeping behind the lazy path
// white-box: an activity's rateEpoch records the reshare pass that last
// changed its rate, so a co-solved flow whose share comes out unchanged
// keeps its epoch (the completion event provably stayed in place) while a
// flow whose share moves is stamped with the new pass.
func TestRateEpochStamping(t *testing.T) {
	// Scenario A: the shared link is never binding for the long flow (its
	// private uplink is), so the short flow joining and leaving re-solves
	// the long flow without changing its rate: epoch frozen, skips counted.
	k := New()
	ha := k.AddHost("a", 1e9, 1)
	hb := k.AddHost("b", 1e9, 1)
	hc := k.AddHost("c", 1e9, 1)
	up := k.AddLink("up", 1e8, 1e-6)
	shared := k.AddLink("shared", 10e9, 1e-6)
	k.AddRoute("a", "b", []*Link{up, shared})
	k.AddRoute("c", "b", []*Link{shared})
	pa := &Proc{k: k, name: "pa", host: ha}
	pb := &Proc{k: k, name: "pb", host: hb}
	pc := &Proc{k: k, name: "pc", host: hc}
	m1 := k.mailboxAt(k.NewMailbox())
	m2 := k.mailboxAt(k.NewMailbox())
	k.post(pa, m1, 1e9, nil, true) // long flow, bottlenecked on up
	k.postRecv(pb, m1)
	k.post(pc, m2, 1e6, nil, true) // short flow, ample shared bandwidth
	rc := k.postRecv(pb, m2)
	pumpOne(t, k) // latency paid: first flow joins
	pumpOne(t, k) // second flow joins, component co-solved
	if len(k.flows) != 2 {
		t.Fatalf("%d flows in transfer, want 2", len(k.flows))
	}
	var long *activity
	for _, f := range k.flows {
		if len(f.links) == 2 {
			long = f
		}
	}
	if long == nil {
		t.Fatal("long flow not found")
	}
	epoch, skips := long.rateEpoch, k.LazySkips()
	pumpOne(t, k) // short flow completes; component re-solved
	if !rc.done {
		t.Fatal("short flow did not complete first")
	}
	if long.rateEpoch != epoch {
		t.Fatalf("long flow rate unchanged but epoch advanced %d -> %d", epoch, long.rateEpoch)
	}
	if k.LazySkips() != skips+1 {
		t.Fatalf("lazy skips %d -> %d, want one elided reschedule", skips, k.LazySkips())
	}

	// Scenario B: both flows contend on one binding link, so the join and
	// the leave each change the surviving flow's rate and must stamp it
	// with a fresh epoch.
	k2 := New()
	ha2 := k2.AddHost("a", 1e9, 1)
	hb2 := k2.AddHost("b", 1e9, 1)
	hc2 := k2.AddHost("c", 1e9, 1)
	bottleneck := k2.AddLink("l", 1e8, 1e-6)
	k2.AddRoute("a", "b", []*Link{bottleneck})
	k2.AddRoute("c", "b", []*Link{bottleneck})
	pa2 := &Proc{k: k2, name: "pa", host: ha2}
	pb2 := &Proc{k: k2, name: "pb", host: hb2}
	pc2 := &Proc{k: k2, name: "pc", host: hc2}
	n1 := k2.mailboxAt(k2.NewMailbox())
	n2 := k2.mailboxAt(k2.NewMailbox())
	k2.post(pa2, n1, 1e9, nil, true)
	k2.postRecv(pb2, n1)
	pumpOne(t, k2) // long flow joins alone at full bandwidth
	long2 := k2.flows[0]
	joinEpoch := long2.rateEpoch
	k2.post(pc2, n2, 1e6, nil, true)
	rc2 := k2.postRecv(pb2, n2)
	pumpOne(t, k2) // short flow joins: share halves, epoch must advance
	halvedEpoch := long2.rateEpoch
	if halvedEpoch <= joinEpoch {
		t.Fatalf("share halved but epoch did not advance (%d -> %d)", joinEpoch, halvedEpoch)
	}
	pumpOne(t, k2) // short flow completes: share restored, epoch advances again
	if !rc2.done {
		t.Fatal("short flow did not complete")
	}
	if long2.rateEpoch <= halvedEpoch {
		t.Fatalf("share restored but epoch did not advance (%d -> %d)", halvedEpoch, long2.rateEpoch)
	}
}
