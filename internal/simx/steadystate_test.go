package simx

import "testing"

// TestPostMatchCompleteZeroAllocs drives the full rendezvous cycle — post a
// detached send, post the matching receive, fire the latency and transfer
// events — directly against the kernel internals and asserts the steady
// state allocates nothing: comm handles, activities and queue events all
// come from and return to their pools, the mailbox FIFOs rewind their
// backing arrays, and the rate-epoch lazy path leaves settled events alone.
func TestPostMatchCompleteZeroAllocs(t *testing.T) {
	k := New()
	h := k.AddHost("h", 1e9, 1)
	// Two unspawned process shells on one host: the transfer rides the
	// host-private loopback route, no scheduler involved.
	sp := &Proc{k: k, name: "s", host: h}
	rp := &Proc{k: k, name: "r", host: h}
	mb := k.mailboxAt(k.NewMailbox())

	cycle := func() {
		k.post(sp, mb, 4096, nil, true)
		rc := k.postRecv(rp, mb)
		for ev := k.queue.Pop(); ev != nil; ev = k.queue.Pop() {
			k.now = ev.Time
			k.handleEvent(ev)
			k.queue.Recycle(ev)
		}
		if !rc.done {
			t.Fatal("cycle did not complete the receive")
		}
		k.freeComm(rc)
	}
	// Warm the pools: first cycles grow the free lists and scratch slices.
	for i := 0; i < 16; i++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(500, cycle); avg != 0 {
		t.Fatalf("post/match/complete cycle allocates %.2f allocs/op, want 0", avg)
	}
}

// TestContendedReshareZeroAllocs covers the contended variant: two flows on
// a shared link, so every transition re-solves a two-flow component and the
// completion events are rescheduled (or lazily skipped) — still without a
// single allocation in steady state.
func TestContendedReshareZeroAllocs(t *testing.T) {
	k := New()
	a := k.AddHost("a", 1e9, 1)
	b := k.AddHost("b", 1e9, 1)
	l := k.AddLink("l", 1.25e8, 1e-6)
	k.AddRoute("a", "b", []*Link{l})
	s1 := &Proc{k: k, name: "s1", host: a}
	s2 := &Proc{k: k, name: "s2", host: a}
	r1 := &Proc{k: k, name: "r1", host: b}
	r2 := &Proc{k: k, name: "r2", host: b}
	m1 := k.mailboxAt(k.NewMailbox())
	m2 := k.mailboxAt(k.NewMailbox())

	cycle := func() {
		k.post(s1, m1, 1e6, nil, true)
		k.post(s2, m2, 2e6, nil, true)
		c1 := k.postRecv(r1, m1)
		c2 := k.postRecv(r2, m2)
		for ev := k.queue.Pop(); ev != nil; ev = k.queue.Pop() {
			k.now = ev.Time
			k.handleEvent(ev)
			k.queue.Recycle(ev)
		}
		if !c1.done || !c2.done {
			t.Fatal("contended cycle did not complete both receives")
		}
		k.freeComm(c1)
		k.freeComm(c2)
	}
	for i := 0; i < 16; i++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(500, cycle); avg != 0 {
		t.Fatalf("contended reshare cycle allocates %.2f allocs/op, want 0", avg)
	}
}

// TestEmptyNameMailboxRendezvous pins a subtle interning property: the
// empty string is a regular mailbox name resolving to one shared mailbox
// (only NewMailbox IDs are anonymous), so two sides addressing "" meet.
func TestEmptyNameMailboxRendezvous(t *testing.T) {
	k := New()
	k.AddHost("h", 1e9, 1)
	done := false
	k.Spawn("s", k.Host("h"), func(p *Proc) { p.Send("", 1024, "payload") })
	k.Spawn("r", k.Host("h"), func(p *Proc) {
		if got := p.Recv(""); got != "payload" {
			t.Errorf("Recv(\"\") payload = %v", got)
		}
		done = true
	})
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("empty-name rendezvous did not complete")
	}
}
