package simx

import (
	"fmt"
	"testing"
)

// The snapshot/fork tests drive a miniature replay: ranks execute op lists
// over a clique platform whose inter-host routes all cross one shared
// backbone link (maximal contention), sends are detached (fire-and-forget)
// and receives block — matched generation below keeps per-pair counts equal,
// so a full run can never deadlock.

type forkOp struct {
	kind byte // 'c' compute, 's' detached send, 'r' recv
	vol  float64
	peer int
}

func forkPlatform(n int) *Kernel {
	k := New()
	bb := k.AddLink("bb", 1e8, 1e-4)
	for i := 0; i < n; i++ {
		// Distinct speeds de-tie completion instants across hosts.
		k.AddHost(fmt.Sprintf("h%d", i), 1e9*(1+0.1*float64(i)), 1)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				k.AddRoute(fmt.Sprintf("h%d", i), fmt.Sprintf("h%d", j), []*Link{bb})
			}
		}
	}
	return k
}

func runForkOps(p *Proc, rank int, ops []forkOp) {
	for _, op := range ops {
		switch op.kind {
		case 'c':
			p.Execute(op.vol)
		case 's':
			p.ISendDetached(fmt.Sprintf("m%d>%d", rank, op.peer), op.vol, nil)
		case 'r':
			p.Recv(fmt.Sprintf("m%d>%d", op.peer, rank))
		}
	}
}

type forkRec struct {
	comm       bool
	a, b       string // proc/host for computes, src/dst procs for comms
	vol        float64
	start, end float64
}

type forkTracer struct{ recs []forkRec }

func (t *forkTracer) Compute(proc, host string, flops, start, end float64) {
	t.recs = append(t.recs, forkRec{false, proc, host, flops, start, end})
}

func (t *forkTracer) Comm(src, dst string, bytes, start, end float64) {
	t.recs = append(t.recs, forkRec{true, src, dst, bytes, start, end})
}

func runForkFull(ops [][]forkOp) (float64, []forkRec, error) {
	k := forkPlatform(len(ops))
	tr := &forkTracer{}
	k.SetTracer(tr)
	for r := range ops {
		r := r
		k.Spawn(fmt.Sprintf("p%d", r), k.Host(fmt.Sprintf("h%d", r)), func(p *Proc) {
			runForkOps(p, r, ops[r])
		})
	}
	_, err := k.Run()
	return k.Now(), tr.recs, err
}

// procHost maps the harness's "p<r>" process names back to "h<r>" hosts.
func procHost(proc string) string { return "h" + proc[1:] }

// runForkForked replays ops with a donor prefix run, a Snapshot/Restore, and
// a resumed suffix run, mirroring the production fork path including its
// post-hoc safety check. forkable is false when the cut is not shareable
// (donor failed to quiesce, a suffix activity overlapped donor resource
// usage, or an exact cross-side completion tie made the merge ambiguous) —
// production falls back to a from-scratch run in those cases.
func runForkForked(ops [][]forkOp, cuts []int) (makespan float64, merged []forkRec, forkable bool, err error) {
	n := len(ops)
	k := forkPlatform(n)
	donor := &forkTracer{}
	k.SetTracer(donor)
	park := make([]float64, n)
	var order []int
	for r := range ops {
		r := r
		k.Spawn(fmt.Sprintf("p%d", r), k.Host(fmt.Sprintf("h%d", r)), func(p *Proc) {
			runForkOps(p, r, ops[r][:cuts[r]])
			park[r] = p.Now()
			order = append(order, r) // cooperative scheduling: no data race
		})
	}
	if _, err := k.Run(); err != nil {
		return 0, nil, false, nil // unbalanced prefix deadlocked the donor
	}
	snap, serr := k.Snapshot(nil)
	if serr != nil {
		return 0, nil, false, nil // prefix left rendezvous state behind
	}
	lastEnd := map[string]float64{}
	donorEnds := map[float64]bool{}
	use := func(rec forkRec, names []string) []string {
		if rec.comm {
			return k.RouteLinks(procHost(rec.a), procHost(rec.b), names[:0])
		}
		return append(names[:0], rec.b)
	}
	var scratch []string
	for _, rec := range donor.recs {
		donorEnds[rec.end] = true
		for _, res := range use(rec, scratch) {
			if rec.end > lastEnd[res] {
				lastEnd[res] = rec.end
			}
		}
	}
	if err := k.Restore(snap); err != nil {
		return 0, nil, false, err
	}
	fork := &forkTracer{}
	k.SetTracer(fork)
	for _, r := range order {
		r := r
		k.Spawn(fmt.Sprintf("p%d", r), k.Host(fmt.Sprintf("h%d", r)), func(p *Proc) {
			p.SleepUntil(park[r])
			runForkOps(p, r, ops[r][cuts[r]:])
		})
	}
	if _, err := k.Run(); err != nil {
		return 0, nil, false, fmt.Errorf("forked run: %w", err)
	}
	for _, rec := range fork.recs {
		if donorEnds[rec.end] {
			return 0, nil, false, nil // ambiguous cross-side completion tie
		}
		for _, res := range use(rec, scratch) {
			if rec.start < lastEnd[res] {
				return 0, nil, false, nil // suffix overlapped donor usage
			}
		}
	}
	// Two-way merge by completion time; both streams are emitted in
	// nondecreasing end order and cross-side ties were rejected above.
	di, fi := 0, 0
	for di < len(donor.recs) || fi < len(fork.recs) {
		if fi == len(fork.recs) || (di < len(donor.recs) && donor.recs[di].end < fork.recs[fi].end) {
			merged = append(merged, donor.recs[di])
			di++
		} else {
			merged = append(merged, fork.recs[fi])
			fi++
		}
	}
	return k.Now(), merged, true, nil
}

// forkWorkload decodes a byte string into a matched multi-rank program plus
// per-rank cut positions — the fuzz input shape.
func forkWorkload(data []byte) (ops [][]forkOp, cuts []int, ok bool) {
	if len(data) < 4 {
		return nil, nil, false
	}
	n := 2 + int(data[0])%3
	ops = make([][]forkOp, n)
	body := data[1:]
	if len(body) > 240 {
		body = body[:240]
	}
	for i := 0; i+1 < len(body); i += 2 {
		a, b := body[i], body[i+1]
		rank := int(a) % n
		switch b % 3 {
		case 0:
			vol := 1e6 * float64(1+int(b>>2)%13) * (1 + 0.05*float64(rank))
			ops[rank] = append(ops[rank], forkOp{kind: 'c', vol: vol})
		case 1:
			peer := (rank + 1 + int(b>>2)%(n-1)) % n
			vol := 1e4 * float64(1+int(b>>3)%7)
			ops[rank] = append(ops[rank], forkOp{kind: 's', vol: vol, peer: peer})
			ops[peer] = append(ops[peer], forkOp{kind: 'r', peer: rank})
		default:
			vol := 3e5 * float64(1+int(b>>2)%5) * (1 + 0.07*float64(rank))
			ops[rank] = append(ops[rank], forkOp{kind: 'c', vol: vol})
		}
	}
	cuts = make([]int, n)
	total := 0
	for r := range ops {
		cuts[r] = int(data[(r+1)%len(data)]) % (len(ops[r]) + 1)
		total += len(ops[r])
	}
	return ops, cuts, total > 0
}

// checkForkEquivalence is the shared oracle: a forkable cut must reproduce
// the straight run bit-for-bit — same makespan, same traced activities in
// the same order.
func checkForkEquivalence(t *testing.T, ops [][]forkOp, cuts []int) (forkable bool) {
	t.Helper()
	wantM, wantRecs, err := runForkFull(ops)
	if err != nil {
		t.Fatalf("full run: %v", err)
	}
	gotM, gotRecs, forkable, err := runForkForked(ops, cuts)
	if err != nil {
		t.Fatalf("forked run: %v", err)
	}
	if !forkable {
		return false
	}
	if gotM != wantM {
		t.Fatalf("forked makespan %v, full run %v (cuts %v)", gotM, wantM, cuts)
	}
	if len(gotRecs) != len(wantRecs) {
		t.Fatalf("forked run traced %d activities, full run %d", len(gotRecs), len(wantRecs))
	}
	for i := range wantRecs {
		if gotRecs[i] != wantRecs[i] {
			t.Fatalf("record %d diverged:\nforked %+v\nfull   %+v", i, gotRecs[i], wantRecs[i])
		}
	}
	return true
}

func TestKernelForkMatchesFullRun(t *testing.T) {
	// Compute prefix, communicating suffix: the canonical shareable shape.
	ops := [][]forkOp{
		{{kind: 'c', vol: 5e8}, {kind: 's', vol: 1e6, peer: 1}, {kind: 'r', peer: 2}},
		{{kind: 'c', vol: 8e8}, {kind: 'r', peer: 0}, {kind: 's', vol: 2e6, peer: 2}},
		{{kind: 'c', vol: 3e8}, {kind: 's', vol: 4e5, peer: 0}, {kind: 'r', peer: 1}},
	}
	if !checkForkEquivalence(t, ops, []int{1, 1, 1}) {
		t.Fatal("compute-only prefix must be forkable")
	}
	// Balanced communicating prefix is shareable too.
	ops2 := [][]forkOp{
		{{kind: 'c', vol: 2e8}, {kind: 's', vol: 1e6, peer: 1}, {kind: 'c', vol: 6e8}},
		{{kind: 'r', peer: 0}, {kind: 'c', vol: 4e8}, {kind: 'c', vol: 2e8}},
	}
	if !checkForkEquivalence(t, ops2, []int{2, 1}) {
		t.Fatal("balanced comm prefix must be forkable")
	}
	// Full-length cuts: the fork replays nothing and inherits the makespan.
	if !checkForkEquivalence(t, ops2, []int{3, 3}) {
		t.Fatal("full-length cut must be forkable")
	}
	// Zero cuts: the fork replays everything from a restored kernel.
	if !checkForkEquivalence(t, ops2, []int{0, 0}) {
		t.Fatal("zero cut must be forkable")
	}
}

func TestKernelForkUnbalancedPrefixFallsBack(t *testing.T) {
	// The send sits before rank 0's cut but the matching recv after rank
	// 1's: the donor must refuse to quiesce rather than hand out a corrupt
	// snapshot.
	ops := [][]forkOp{
		{{kind: 's', vol: 1e6, peer: 1}, {kind: 'c', vol: 2e8}},
		{{kind: 'c', vol: 2e8}, {kind: 'r', peer: 0}},
	}
	_, _, forkable, err := runForkForked(ops, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if forkable {
		t.Fatal("unbalanced prefix must not be forkable")
	}
}

func TestSnapshotRefusesBusyKernel(t *testing.T) {
	k := forkPlatform(2)
	k.Spawn("p0", k.Host("h0"), func(p *Proc) { p.Execute(1e9) })
	if _, err := k.Snapshot(nil); err == nil {
		t.Fatal("snapshot of a kernel with live processes must fail")
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Snapshot(nil); err != nil {
		t.Fatalf("snapshot after quiesce: %v", err)
	}
}

func TestRestoreRewindsFaultEffects(t *testing.T) {
	k := forkPlatform(2)
	h := k.Host("h0")
	base := h.Speed
	// A degradation window still open when the kernel quiesces: Speed is
	// scaled at snapshot time and the closing timer is still queued.
	k.DegradeHostAt("h0", 0.5, 1.0, 100.0)
	k.Spawn("p0", h, func(p *Proc) { p.Sleep(2.0) })
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if h.Speed == base {
		t.Fatal("degradation window did not scale the host")
	}
	snap, err := k.Snapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Time != 2.0 {
		t.Fatalf("snapshot time %v, want 2", snap.Time)
	}
	if err := k.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if h.Speed != base {
		t.Fatalf("restored speed %v, want base %v", h.Speed, base)
	}
	if k.Now() != 0 {
		t.Fatalf("restored clock %v, want 0", k.Now())
	}
	// The restored kernel must behave exactly like a fresh one.
	k.Spawn("p0", h, func(p *Proc) { p.Execute(1e9) })
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !close(k.Now(), 1.0) {
		t.Fatalf("restored kernel makespan %v, want 1", k.Now())
	}
}

func TestRestoreRejectsForeignSnapshot(t *testing.T) {
	k2, k3 := forkPlatform(2), forkPlatform(3)
	snap, err := k3.Snapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := k2.Restore(snap); err == nil {
		t.Fatal("restore must reject a snapshot from a different platform")
	}
}

// FuzzKernelFork cross-checks Snapshot→Restore→resume against a straight run
// on random matched programs and random cuts: whenever the cut is shareable,
// the forked replay must be bit-identical.
func FuzzKernelFork(f *testing.F) {
	f.Add([]byte{0, 1, 0, 9, 4, 200, 33, 17, 88, 5, 61, 7})
	f.Add([]byte{1, 8, 1, 3, 12, 40, 2, 1, 77, 13, 21, 64, 90, 6})
	f.Add([]byte{2, 3, 3, 3, 0, 0, 1, 1, 2, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{200, 250, 128, 64, 32, 16, 8, 4, 2, 1, 0, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		ops, cuts, ok := forkWorkload(data)
		if !ok {
			return
		}
		checkForkEquivalence(t, ops, cuts)
	})
}

// BenchmarkKernelSnapshotRestore gates the steady-state cost of a
// snapshot/restore round-trip; with a pooled snapshot buffer it must not
// allocate at all.
func BenchmarkKernelSnapshotRestore(b *testing.B) {
	k := forkPlatform(4)
	k.Spawn("p0", k.Host("h0"), func(p *Proc) { p.Execute(1e9) })
	if _, err := k.Run(); err != nil {
		b.Fatal(err)
	}
	snap := new(KernelSnapshot)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := k.Snapshot(snap)
		if err != nil {
			b.Fatal(err)
		}
		if err := k.Restore(s); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSnapshotQuiescenceRefusals: non-quiescent states that survive a
// completed Run must still refuse a snapshot — a fork from any of them
// could not be equivalent to a from-scratch replay.
func TestSnapshotQuiescenceRefusals(t *testing.T) {
	t.Run("pending-rendezvous", func(t *testing.T) {
		k := forkPlatform(2)
		k.Spawn("p0", k.Host("h0"), func(p *Proc) {
			p.ISendDetached("m0>1", 10, nil) // never received
		})
		if _, err := k.Run(); err != nil {
			t.Fatal(err)
		}
		if _, err := k.Snapshot(nil); err == nil {
			t.Fatal("snapshot with a queued unmatched send must fail")
		}
	})
	t.Run("fail-stopped-host", func(t *testing.T) {
		k := forkPlatform(2)
		k.FailHostAt("h1", 1e-3)
		k.Spawn("p0", k.Host("h0"), func(p *Proc) { p.Execute(1e7) })
		if _, err := k.Run(); err != nil {
			t.Fatal(err)
		}
		if _, err := k.Snapshot(nil); err == nil {
			t.Fatal("snapshot with a fail-stopped host must fail")
		}
	})
	t.Run("fail-stopped-link", func(t *testing.T) {
		k := forkPlatform(2)
		k.FailRouteAt("h0", "h1", 1e-3)
		k.Spawn("p0", k.Host("h0"), func(p *Proc) { p.Execute(1e7) })
		if _, err := k.Run(); err != nil {
			t.Fatal(err)
		}
		if _, err := k.Snapshot(nil); err == nil {
			t.Fatal("snapshot with a fail-stopped link must fail")
		}
	})
}
