package simx

import (
	"fmt"
	"testing"
)

// benchTopology builds a backbone platform: n hosts, each with a private
// uplink to a shared backbone link, so every cross-host flow crosses three
// links and all flows contend on the backbone.
func benchTopology(n int) *Kernel {
	k := New()
	backbone := k.AddLink("backbone", 1.25e9, 1e-6)
	uplinks := make([]*Link, n)
	for i := 0; i < n; i++ {
		k.AddHost(fmt.Sprintf("h%d", i), 1e9, 1)
		uplinks[i] = k.AddLink(fmt.Sprintf("up%d", i), 1.25e8, 1e-7)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			k.AddRoute(fmt.Sprintf("h%d", i), fmt.Sprintf("h%d", j),
				[]*Link{uplinks[i], backbone, uplinks[j]})
		}
	}
	return k
}

// benchFlows builds f synthetic flows over a backbone topology of l uplinks:
// flow i crosses uplink[i%l], the backbone, and uplink[(i+1)%l].
func benchFlows(f, l int) ([]*activity, []*Link) {
	backbone := &Link{Name: "backbone", Bandwidth: 1.25e9}
	uplinks := make([]*Link, l)
	for i := range uplinks {
		uplinks[i] = &Link{Name: fmt.Sprintf("up%d", i), Bandwidth: 1.25e8}
	}
	flows := make([]*activity, 0, f)
	for i := 0; i < f; i++ {
		flows = append(flows, &activity{
			kind:     actComm,
			links:    []*Link{uplinks[i%l], backbone, uplinks[(i+1)%l]},
			bwFactor: 1,
		})
	}
	all := append([]*Link{backbone}, uplinks...)
	return flows, all
}

// BenchmarkMaxMinSolve measures one max-min fair solve over a contended
// multi-hop flow set, the operation on the critical path of every
// communication start and finish.
func BenchmarkMaxMinSolve(b *testing.B) {
	for _, size := range []struct{ flows, links int }{
		{8, 4}, {64, 16}, {512, 64},
	} {
		b.Run(fmt.Sprintf("flows=%d", size.flows), func(b *testing.B) {
			flows, _ := benchFlows(size.flows, size.links)
			var s maxMinSolver
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.solve(flows)
			}
		})
	}
}

// BenchmarkKernelReshare measures a full replay-shaped simulation: n
// processes exchanging staggered messages over a shared backbone, so flows
// continuously join and leave the contended set and every transition
// reshapes bandwidth.
func BenchmarkKernelReshare(b *testing.B) {
	for _, n := range []int{8, 32} {
		b.Run(fmt.Sprintf("hosts=%d", n), func(b *testing.B) {
			const rounds = 32
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				k := benchTopology(n)
				for p := 0; p < n; p++ {
					src, dst := p, (p+1)%n
					k.Spawn(fmt.Sprintf("p%d", p), k.Host(fmt.Sprintf("h%d", src)), func(pr *Proc) {
						mb := fmt.Sprintf("m%d>%d", src, dst)
						peer := fmt.Sprintf("m%d>%d", (src+n-1)%n, src)
						for r := 0; r < rounds; r++ {
							c := pr.ISend(mb, 1e6, nil)
							pr.Recv(peer)
							pr.WaitComm(c)
							pr.Execute(1e6)
						}
					})
				}
				b.StartTimer()
				if _, err := k.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
