package simx

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// traceEvent is one completed activity as seen by a test tracer.
type traceEvent struct {
	kind       string
	a, b       string
	vol        float64
	start, end float64
}

// recTracer records every completion for bit-level comparison of runs.
type recTracer struct{ events []traceEvent }

func (t *recTracer) Compute(proc, host string, flops, start, end float64) {
	t.events = append(t.events, traceEvent{"compute", proc, host, flops, start, end})
}
func (t *recTracer) Comm(src, dst string, bytes, start, end float64) {
	t.events = append(t.events, traceEvent{"comm", src, dst, bytes, start, end})
}

// sorted returns the events in a canonical order keyed on the stable fields
// (who did what), so two runs whose timestamps differ by ulps still align
// pairwise for comparison.
func (t *recTracer) sorted() []traceEvent {
	out := append([]traceEvent(nil), t.events...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		if a.a != b.a {
			return a.a < b.a
		}
		if a.b != b.b {
			return a.b < b.b
		}
		return a.start < b.start
	})
	return out
}

// ulpsApart returns the distance between a and b in units in the last place.
func ulpsApart(a, b float64) int {
	if a == b {
		return 0
	}
	n := 0
	for x := math.Min(a, b); x < math.Max(a, b) && n <= 64; n++ {
		x = math.Nextafter(x, math.Inf(1))
	}
	return n
}

// randomContendedRun builds a random multi-hop platform (clusters of hosts
// behind uplinks sharing a backbone) with random staggered transfers and
// compute bursts, runs it, and returns the makespan and the sorted
// completion record.
func randomContendedRun(t *testing.T, seed int64, global bool) (float64, []traceEvent) {
	return randomContendedRunOpts(t, seed, global, false)
}

// randomContendedEagerRun is the partial-sharing, eager-rescheduling variant
// used as the reference of the lazy-rescheduling equivalence tests.
func randomContendedEagerRun(t *testing.T, seed int64) (float64, []traceEvent) {
	return randomContendedRunOpts(t, seed, false, true)
}

func randomContendedRunOpts(t *testing.T, seed int64, global, eager bool) (float64, []traceEvent) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	k := New()
	k.SetGlobalReshare(global)
	k.SetEagerReschedule(eager)
	tr := &recTracer{}
	k.SetTracer(tr)

	nHosts := 3 + rng.Intn(6)
	backbone := k.AddLink("bb", (1+rng.Float64())*1e9, 1e-6)
	uplinks := make([]*Link, nHosts)
	names := make([]string, nHosts)
	for i := 0; i < nHosts; i++ {
		names[i] = fmt.Sprintf("h%d", i)
		k.AddHost(names[i], 1e9, 1+rng.Intn(2))
		uplinks[i] = k.AddLink(fmt.Sprintf("up%d", i), (1+rng.Float64())*1.25e8, 1e-7)
	}
	for i := 0; i < nHosts; i++ {
		for j := 0; j < nHosts; j++ {
			if i == j {
				continue
			}
			// Half the pairs route only over their uplinks (disjoint from
			// pairs on other uplinks), half cross the shared backbone, so
			// the flow graph has several connected components that merge
			// and split as transfers come and go.
			links := []*Link{uplinks[i], uplinks[j]}
			if (i+j)%2 == 0 {
				links = []*Link{uplinks[i], backbone, uplinks[j]}
			}
			k.AddRoute(names[i], names[j], links)
		}
	}

	// A random ring shift keeps the pattern a permutation (no deadlocks)
	// while still exercising different contention graphs per seed.
	shift := 1 + rng.Intn(nHosts-1)
	rounds := 2 + rng.Intn(4)
	for p := 0; p < nHosts; p++ {
		src := p
		dst := (p + shift) % nHosts
		sender := (p - shift + nHosts) % nHosts
		sleep := rng.Float64() * 1e-3
		bytes := 1e4 + rng.Float64()*5e6
		flops := 1e5 + rng.Float64()*1e7
		k.Spawn(fmt.Sprintf("p%d", p), k.Host(names[src]), func(pr *Proc) {
			mb := fmt.Sprintf("m%d>%d", src, dst)
			peer := fmt.Sprintf("m%d>%d", sender, src)
			pr.Sleep(sleep)
			for r := 0; r < rounds; r++ {
				c := pr.ISend(mb, bytes, nil)
				pr.Recv(peer)
				pr.WaitComm(c)
				pr.Execute(flops)
			}
		})
	}
	end, err := k.Run()
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return end, tr.sorted()
}

// ringKernel builds a deterministic contended ring exchange over a shared
// backbone; every flow contends with its neighbours, so every transition
// reshapes bandwidth.
func ringKernel(n int, global bool) (*Kernel, *recTracer) {
	k := New()
	k.SetGlobalReshare(global)
	tr := &recTracer{}
	k.SetTracer(tr)
	backbone := k.AddLink("bb", 1.25e9, 1e-6)
	uplinks := make([]*Link, n)
	for i := 0; i < n; i++ {
		k.AddHost(fmt.Sprintf("h%d", i), 1e9, 1)
		uplinks[i] = k.AddLink(fmt.Sprintf("up%d", i), 1.25e8, 1e-7)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				k.AddRoute(fmt.Sprintf("h%d", i), fmt.Sprintf("h%d", j),
					[]*Link{uplinks[i], backbone, uplinks[j]})
			}
		}
	}
	for p := 0; p < n; p++ {
		src := p
		dst := (p + 1) % n
		k.Spawn(fmt.Sprintf("p%d", p), k.Host(fmt.Sprintf("h%d", src)), func(pr *Proc) {
			mb := fmt.Sprintf("m%d>%d", src, dst)
			peer := fmt.Sprintf("m%d>%d", (src+n-1)%n, src)
			for r := 0; r < 12; r++ {
				c := pr.ISend(mb, 1e6+float64(src)*1e4, nil)
				pr.Recv(peer)
				pr.WaitComm(c)
				pr.Execute(1e6 + float64(src)*1e3)
			}
		})
	}
	return k, tr
}

// TestPartialReshareMatchesGlobal verifies the partial-reshare invariant on
// random multi-hop topologies with merging and splitting components: the
// fair shares are identical, so every simulated time must agree with the
// reference full re-solve to within a few ulps (untouched components settle
// their remaining-work counters at different instants, which reassociates
// the floating-point accumulation but cannot change the modelled times).
func TestPartialReshareMatchesGlobal(t *testing.T) {
	const maxUlps = 16
	for seed := int64(1); seed <= 25; seed++ {
		endP, evP := randomContendedRun(t, seed, false)
		endG, evG := randomContendedRun(t, seed, true)
		if ulpsApart(endP, endG) > maxUlps {
			t.Fatalf("seed %d: partial makespan %v != global %v (diff %g)",
				seed, endP, endG, math.Abs(endP-endG))
		}
		if len(evP) != len(evG) {
			t.Fatalf("seed %d: %d events (partial) vs %d (global)", seed, len(evP), len(evG))
		}
		for i := range evP {
			p, g := evP[i], evG[i]
			if p.kind != g.kind || p.a != g.a || p.b != g.b || p.vol != g.vol ||
				ulpsApart(p.start, g.start) > maxUlps || ulpsApart(p.end, g.end) > maxUlps {
				t.Fatalf("seed %d event %d: partial %+v != global %+v", seed, i, p, g)
			}
		}
	}
}

// TestPartialReshareMatchesGlobalRing runs the deterministic contended ring
// under both sharing paths and compares every completion bit for bit. Both
// kernels reschedule eagerly, so the only difference is partial vs global
// sharing; the lazy-vs-eager comparison (which is ulp- but not bit-exact)
// lives in TestLazyRescheduleMatchesEager.
func TestPartialReshareMatchesGlobalRing(t *testing.T) {
	for _, n := range []int{2, 3, 8, 16} {
		kp, trp := ringKernel(n, false)
		kp.SetEagerReschedule(true)
		endP, errP := kp.Run()
		kg, trg := ringKernel(n, true)
		endG, errG := kg.Run()
		if errP != nil || errG != nil {
			t.Fatalf("n=%d: errs %v / %v", n, errP, errG)
		}
		if endP != endG {
			t.Fatalf("n=%d: partial makespan %v != global %v", n, endP, endG)
		}
		sp, sg := trp.sorted(), trg.sorted()
		for i := range sp {
			if sp[i] != sg[i] {
				t.Fatalf("n=%d event %d: %+v != %+v", n, i, sp[i], sg[i])
			}
		}
	}
}

// TestRepeatedRunDeterminism verifies run-to-run bit-level determinism on a
// contended topology: with intrusive ordered sets there is no map iteration
// left to randomize floating-point accumulation order.
func TestRepeatedRunDeterminism(t *testing.T) {
	var refEnd float64
	var refEv []traceEvent
	for run := 0; run < 5; run++ {
		k, tr := ringKernel(9, false)
		end, err := k.Run()
		if err != nil {
			t.Fatal(err)
		}
		if run == 0 {
			refEnd = end
			refEv = append([]traceEvent(nil), tr.events...)
			continue
		}
		if end != refEnd {
			t.Fatalf("run %d: makespan %v != %v", run, end, refEnd)
		}
		if len(tr.events) != len(refEv) {
			t.Fatalf("run %d: %d events != %d", run, len(tr.events), len(refEv))
		}
		for i := range refEv {
			if tr.events[i] != refEv[i] {
				t.Fatalf("run %d event %d: %+v != %+v", run, i, tr.events[i], refEv[i])
			}
		}
	}
}

// TestSolverRepeatedSolveDeterministic re-solves an identical flow slice and
// demands bit-identical allocations every time.
func TestSolverRepeatedSolveDeterministic(t *testing.T) {
	flows, _ := benchFlows(64, 16)
	var s maxMinSolver
	s.solve(flows)
	ref := make([]float64, len(flows))
	for i, a := range flows {
		ref[i] = a.allocated
	}
	for round := 0; round < 10; round++ {
		s.solve(flows)
		for i, a := range flows {
			if a.allocated != ref[i] {
				t.Fatalf("round %d flow %d: %v != %v", round, i, a.allocated, ref[i])
			}
		}
	}
}

// TestUnconstrainedFlowGetsLargestBandwidth covers the documented fallback:
// a flow crossing no links must receive the largest link bandwidth seen by
// the solve — not a zero share that would hang the transfer.
func TestUnconstrainedFlowGetsLargestBandwidth(t *testing.T) {
	la := &Link{Name: "a", Bandwidth: 50}
	lb := &Link{Name: "b", Bandwidth: 200}
	free := &activity{kind: actComm, bwFactor: 1} // no links
	f1 := &activity{kind: actComm, links: []*Link{la}, bwFactor: 1}
	f2 := &activity{kind: actComm, links: []*Link{lb}, bwFactor: 1}
	var s maxMinSolver
	s.solve([]*activity{f1, free, f2})
	if free.allocated != 200 {
		t.Fatalf("unconstrained flow allocated %v, want 200 (largest bandwidth seen)", free.allocated)
	}
	if f1.allocated != 50 || f2.allocated != 200 {
		t.Fatalf("constrained flows got %v, %v", f1.allocated, f2.allocated)
	}
	// With no links anywhere the share degenerates to "effectively
	// infinite" but stays finite so rate arithmetic cannot produce NaNs.
	lone := &activity{kind: actComm, bwFactor: 1}
	s.solve([]*activity{lone})
	if lone.allocated != math.MaxFloat64 {
		t.Fatalf("linkless-only solve allocated %v", lone.allocated)
	}
}

// TestSolveZeroAllocs guards the solver's allocation-free steady state.
func TestSolveZeroAllocs(t *testing.T) {
	flows, _ := benchFlows(64, 16)
	var s maxMinSolver
	s.solve(flows) // warm scratch
	if n := testing.AllocsPerRun(100, func() { s.solve(flows) }); n != 0 {
		t.Fatalf("solve allocates %v times per run", n)
	}
}
