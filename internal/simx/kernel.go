// Package simx is a discrete-event simulation kernel in the style of the
// SimGrid toolkit, providing the substrate on which both the trace replay
// tool and the virtual-time MPI engine run.
//
// The kernel models:
//
//   - hosts with a computing power in flop/s per core and a core count,
//     shared fairly among concurrent compute activities;
//   - network links with a bandwidth and a latency, shared among concurrent
//     flows according to an analytical max-min fairness contention model
//     (the flow-based model SimGrid validates against packet-level
//     simulation);
//   - multi-hop routes between hosts, so a transfer crosses several links
//     and hierarchical cluster topologies are contended realistically;
//   - mailboxes with rendezvous semantics used to match sends and receives.
//
// Simulated processes are goroutines scheduled cooperatively: exactly one
// process runs at a time and control returns to the kernel whenever the
// process blocks on a simulation call, which keeps simulations fully
// deterministic.
package simx

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"tireplay/internal/eventq"
)

// RateModel adjusts a point-to-point communication according to the message
// size, returning a latency multiplier and a bandwidth multiplier. It is how
// the piece-wise linear MPI model of the paper plugs into the kernel. A nil
// model means factors of 1.
type RateModel func(bytes float64) (latencyFactor, bandwidthFactor float64)

// Tracer observes completed activities; the replay tool uses it to emit
// timed traces of a simulation (one of the outputs in Figure 4 of the paper).
type Tracer interface {
	// Compute is called when a compute burst of the given volume, executed
	// by process proc on host, completes.
	Compute(proc, host string, flops, start, end float64)
	// Comm is called when a point-to-point transfer completes.
	Comm(srcProc, dstProc string, bytes, start, end float64)
}

// Kernel is a discrete-event simulator instance. Create one with New,
// populate it with hosts, links, routes and processes, then call Run.
type Kernel struct {
	now   float64
	queue eventq.Queue

	hosts map[string]*Host
	links map[string]*Link
	// routes maps "src|dst" to the route between two hosts.
	routes map[string]*Route

	procs     []*Proc
	runq      []*Proc
	blocked   int
	living    int
	procPanic error // first panic raised by a process body

	mailboxes map[string]*Mailbox

	flows     map[*activity]struct{} // comm activities in transfer phase
	rateModel RateModel
	tracer    Tracer

	// DefaultLoopback is used for communications between two processes on
	// the same host (e.g. folded acquisitions); it is modelled as a private
	// link per host, so loopback traffic does not contend with the network.
	LoopbackBandwidth float64
	LoopbackLatency   float64

	maxmin maxMinSolver
}

// New returns an empty kernel with the clock at zero.
func New() *Kernel {
	return &Kernel{
		hosts:             make(map[string]*Host),
		links:             make(map[string]*Link),
		routes:            make(map[string]*Route),
		mailboxes:         make(map[string]*Mailbox),
		flows:             make(map[*activity]struct{}),
		LoopbackBandwidth: 10e9, // 10 GB/s shared-memory copy rate
		LoopbackLatency:   1e-7, // 100 ns
	}
}

// Now returns the current simulated time in seconds.
func (k *Kernel) Now() float64 { return k.now }

// SetRateModel installs the message-size-dependent latency/bandwidth
// correction model applied to every point-to-point communication.
func (k *Kernel) SetRateModel(m RateModel) { k.rateModel = m }

// SetTracer installs an observer of completed activities.
func (k *Kernel) SetTracer(t Tracer) { k.tracer = t }

// DeadlockError reports a simulation that cannot progress: the event queue
// is empty while processes are still blocked.
type DeadlockError struct {
	Time    float64
	Blocked []string // "proc: reason" entries
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("simx: deadlock at t=%g with %d blocked process(es): %s",
		e.Time, len(e.Blocked), strings.Join(e.Blocked, "; "))
}

// Run executes the simulation until no process can progress. It returns the
// final simulated time (the makespan) and a non-nil *DeadlockError if
// processes remained blocked when the event queue drained.
func (k *Kernel) Run() (float64, error) {
	for {
		for len(k.runq) > 0 {
			p := k.runq[0]
			k.runq = k.runq[1:]
			k.step(p)
			if k.procPanic != nil {
				// A process body panicked: abort the simulation. Blocked
				// process goroutines are abandoned (the kernel is dead).
				return k.now, k.procPanic
			}
		}
		ev := k.queue.Pop()
		if ev == nil {
			break
		}
		if ev.Time < k.now {
			// Guard against clock regression; indicates a kernel bug.
			panic(fmt.Sprintf("simx: event at %g before now %g", ev.Time, k.now))
		}
		k.now = ev.Time
		k.handleEvent(ev)
	}
	if k.blocked > 0 {
		var blocked []string
		for _, p := range k.procs {
			if p.state == stateBlocked {
				blocked = append(blocked, p.name+": "+p.blockReason)
			}
		}
		sort.Strings(blocked)
		return k.now, &DeadlockError{Time: k.now, Blocked: blocked}
	}
	return k.now, nil
}

// handleEvent dispatches a fired event to the owning activity.
func (k *Kernel) handleEvent(ev *eventq.Event) {
	a, ok := ev.Payload.(*activity)
	if !ok {
		panic("simx: unknown event payload")
	}
	switch a.phase {
	case phaseLatency:
		// Latency paid: the transfer joins the contended flow set.
		a.phase = phaseTransfer
		if a.remaining <= 0 {
			k.completeActivity(a)
			return
		}
		k.settleFlows()
		k.flows[a] = struct{}{}
		k.reshareFlows()
	case phaseTransfer, phaseCompute, phaseSleep:
		k.completeActivity(a)
	default:
		panic("simx: event on activity in unexpected phase")
	}
}

// completeActivity finishes a and wakes its waiters.
func (k *Kernel) completeActivity(a *activity) {
	switch a.kind {
	case actCompute:
		h := a.host
		delete(h.computes, a)
		k.settleHost(h)
		k.reshareHost(h)
		if k.tracer != nil {
			k.tracer.Compute(a.ownerName, h.Name, a.volume, a.start, k.now)
		}
	case actComm:
		if a.phase == phaseTransfer {
			k.settleFlows()
			delete(k.flows, a)
			k.reshareFlows()
		}
		if k.tracer != nil {
			k.tracer.Comm(a.srcName, a.dstName, a.volume, a.start, k.now)
		}
	case actSleep:
		// Nothing to release.
	}
	a.done = true
	for _, w := range a.waiters {
		k.wake(w)
	}
	a.waiters = nil
	if a.onDone != nil {
		a.onDone()
	}
}

// wake moves a blocked process back onto the run queue.
func (k *Kernel) wake(p *Proc) {
	if p.state != stateBlocked {
		panic("simx: waking process that is not blocked: " + p.name)
	}
	p.state = stateRunnable
	p.blockReason = ""
	k.blocked--
	k.runq = append(k.runq, p)
}

// settleHost updates the progress of every compute activity on h up to now.
func (k *Kernel) settleHost(h *Host) {
	for a := range h.computes {
		a.remaining -= a.rate * (k.now - a.lastUpdate)
		if a.remaining < 0 {
			a.remaining = 0
		}
		a.lastUpdate = k.now
	}
}

// reshareHost recomputes the fair share of h's compute activities and
// reschedules their completion events.
func (k *Kernel) reshareHost(h *Host) {
	n := len(h.computes)
	if n == 0 {
		return
	}
	share := h.Speed
	if n > h.Cores {
		share = h.Speed * float64(h.Cores) / float64(n)
	}
	for a := range h.computes {
		a.rate = share
		k.reschedule(a, a.remaining/a.rate)
	}
}

// settleFlows updates the progress of every flow up to now.
func (k *Kernel) settleFlows() {
	for a := range k.flows {
		a.remaining -= a.rate * (k.now - a.lastUpdate)
		if a.remaining < 0 {
			a.remaining = 0
		}
		a.lastUpdate = k.now
	}
}

// reshareFlows recomputes the max-min fair allocation over all active flows
// and reschedules their completion events.
func (k *Kernel) reshareFlows() {
	if len(k.flows) == 0 {
		return
	}
	k.maxmin.solve(k.flows)
	for a := range k.flows {
		// The bandwidth factor models protocol efficiency: the flow occupies
		// its allocated share but progresses at bwFactor times it.
		rate := a.allocated * a.bwFactor
		if rate <= 0 {
			rate = math.SmallestNonzeroFloat64
		}
		a.rate = rate
		k.reschedule(a, a.remaining/a.rate)
	}
}

// reschedule moves a's completion event to now+dt.
func (k *Kernel) reschedule(a *activity, dt float64) {
	if a.doneEv != nil {
		k.queue.Remove(a.doneEv)
	}
	if math.IsInf(dt, 0) || math.IsNaN(dt) {
		panic(fmt.Sprintf("simx: invalid completion delay %g for activity of %q", dt, a.ownerName))
	}
	a.doneEv = k.queue.Push(k.now+dt, a)
}
