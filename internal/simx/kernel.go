// Package simx is a discrete-event simulation kernel in the style of the
// SimGrid toolkit, providing the substrate on which both the trace replay
// tool and the virtual-time MPI engine run.
//
// The kernel models:
//
//   - hosts with a computing power in flop/s per core and a core count,
//     shared fairly among concurrent compute activities;
//   - network links with a bandwidth and a latency, shared among concurrent
//     flows according to an analytical max-min fairness contention model
//     (the flow-based model SimGrid validates against packet-level
//     simulation);
//   - multi-hop routes between hosts, so a transfer crosses several links
//     and hierarchical cluster topologies are contended realistically;
//   - mailboxes with rendezvous semantics used to match sends and receives.
//
// Simulated processes are goroutines scheduled cooperatively: exactly one
// process runs at a time and control returns to the kernel whenever the
// process blocks on a simulation call, which keeps simulations fully
// deterministic.
//
// # Kernel performance notes
//
// The hot path of a replay is the pair of bandwidth-sharing updates done
// when a transfer joins or leaves the contended flow set. The kernel keeps
// that path allocation-free, and confines the expensive work — the max-min
// solve and the event rescheduling — to the flows actually affected (the
// per-transition bookkeeping that remains is one sequential pointer scan of
// the active-flow list):
//
//   - Flow and compute sets are intrusive slices: every activity stores its
//     index (activity.pos) in the set that holds it, the same position-index
//     trick eventq.Event uses, so membership updates are O(1) or one
//     memmove, and iteration is in deterministic start order.
//
//   - Resharing is partial. Max-min fair allocations decompose by connected
//     components of the flow/link sharing graph: flows that share no link
//     (directly or transitively) with a changed flow cannot see their rate
//     change. When a flow joins or leaves, the kernel walks only the
//     connected component of the changed flow (via per-link flow lists),
//     settles and re-solves those flows, and leaves every other component's
//     rates and completion events untouched. The fair shares are
//     bit-identical to a global re-solve (the solver processes the
//     component's flows in the same relative order with the same link
//     capacities); simulated times agree to the ulp, exactly when every
//     transition touches one component and otherwise up to floating-point
//     reassociation of the untouched components' progress updates (see
//     TestPartialReshareMatchesGlobal and its Ring variant).
//
//   - Rescheduling is lazy. After a component is re-solved, a flow whose
//     fair share came out unchanged keeps its pending completion event: the
//     event time is a mathematically equal expression of the same completion
//     instant, so the cancel+push round-trip (and its heap churn) is skipped.
//     Activities stamp the reshare epoch that last changed their rate
//     (rateEpoch); SetEagerReschedule(true) restores the cancel+push
//     reference path and TestLazyRescheduleMatchesEager pins the
//     equivalence. Events that do move are sifted in place
//     (eventq.Queue.Update) instead of removed and re-pushed.
//
//   - Activities, queue events and communication handles are pooled on free
//     lists, mailboxes are interned behind dense IDs (MailboxID) so the
//     rendezvous path neither formats nor hashes a name, and routes resolve
//     through a pointer-keyed per-host cache — so steady-state replay
//     performs no per-action heap allocation at all (see
//     TestPostMatchCompleteZeroAllocs and BenchmarkReplaySteadyState).
//
// SetGlobalReshare(true) restores the reference full-reshare path, which is
// useful to cross-check simulations and benchmark the gain.
package simx

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"tireplay/internal/eventq"
	"tireplay/internal/fifo"
)

// RateModel adjusts a point-to-point communication according to the message
// size, returning a latency multiplier and a bandwidth multiplier. It is how
// the piece-wise linear MPI model of the paper plugs into the kernel. A nil
// model means factors of 1.
type RateModel func(bytes float64) (latencyFactor, bandwidthFactor float64)

// Tracer observes completed activities; the replay tool uses it to emit
// timed traces of a simulation (one of the outputs in Figure 4 of the paper).
type Tracer interface {
	// Compute is called when a compute burst of the given volume, executed
	// by process proc on host, completes.
	Compute(proc, host string, flops, start, end float64)
	// Comm is called when a point-to-point transfer completes.
	Comm(srcProc, dstProc string, bytes, start, end float64)
}

// Kernel is a discrete-event simulator instance. Create one with New,
// populate it with hosts, links, routes and processes, then call Run.
type Kernel struct {
	now   float64
	queue eventq.Queue

	hosts map[string]*Host
	links map[string]*Link
	// hostList/linkList keep the declaration order: fault injection walks
	// all hosts or links (e.g. a global bandwidth degradation) and must do
	// so deterministically — map iteration order would leak into completion
	// event tie-breaking.
	hostList []*Host
	linkList []*Link
	// router resolves host-pair routes; the default is a dense-keyed
	// TableRouter fed by AddRoute, platform layers may install computed
	// routers (see Router).
	router Router

	procs []*Proc
	// runq reuses one backing array across scheduling batches instead of
	// re-slicing it away.
	runq      fifo.Queue[*Proc]
	blocked   int
	living    int
	procPanic error // first panic raised by a process body

	// mailboxes resolves string names; mboxByID is the dense table behind
	// interned MailboxIDs (anonymous mailboxes live only there).
	mailboxes map[string]*Mailbox
	mboxByID  []*Mailbox

	// flows holds the comm activities in transfer phase, in start order;
	// each activity records its index in pos.
	flows     []*activity
	rateModel RateModel
	tracer    Tracer

	// globalReshare disables partial resharing: every flow transition
	// settles and re-solves the full flow set. This is the reference path
	// used by equivalence tests and benchmarks.
	globalReshare bool

	// eagerResched disables lazy rescheduling: every reshare cancels and
	// re-pushes the completion event of every touched activity even when
	// its rate did not change. The lazy path skips that event-queue churn
	// by comparing the freshly solved rate against the current one (the
	// activity's rateEpoch records the last reshare that actually changed
	// it). globalReshare implies eager, so the reference path stays the
	// paper-style full re-solve.
	eagerResched bool

	// rateEpoch counts reshare passes; an activity is stamped with the pass
	// that last changed its rate. The skip decision itself compares the
	// freshly solved rate against the current one; the epoch is the
	// auditable record that a skipped activity's completion event was left
	// in place (see TestRateEpochStamping).
	rateEpoch uint64
	// lazySkips counts completion events left in place by the lazy path.
	lazySkips uint64

	// Partial-reshare scratch: BFS epoch, frontier stack and the collected
	// component, reused across transitions.
	epoch     uint64
	compStack []*activity
	comp      []*activity

	// actPool recycles completed activities; commPool recycles released
	// communication handles.
	actPool  []*activity
	commPool []*Comm

	// faultsActive is set once any fault is scheduled; the rendezvous path
	// only pays the failed-resource checks when it is. doomed is the scratch
	// list of activities collected for killing on a fail-stop, and
	// pendingTimers counts scheduled callbacks still in the queue so Run can
	// tell "only fault timers left" from real pending work (a fault scheduled
	// past the natural end of the simulation must not extend the makespan).
	faultsActive  bool
	doomed        []*activity
	pendingTimers int

	// DefaultLoopback is used for communications between two processes on
	// the same host (e.g. folded acquisitions); it is modelled as a private
	// link per host, so loopback traffic does not contend with the network.
	LoopbackBandwidth float64
	LoopbackLatency   float64

	maxmin maxMinSolver
}

// New returns an empty kernel with the clock at zero.
func New() *Kernel {
	return &Kernel{
		hosts:             make(map[string]*Host),
		links:             make(map[string]*Link),
		router:            NewTableRouter(),
		mailboxes:         make(map[string]*Mailbox),
		LoopbackBandwidth: 10e9, // 10 GB/s shared-memory copy rate
		LoopbackLatency:   1e-7, // 100 ns
	}
}

// Now returns the current simulated time in seconds.
func (k *Kernel) Now() float64 { return k.now }

// SetRateModel installs the message-size-dependent latency/bandwidth
// correction model applied to every point-to-point communication.
func (k *Kernel) SetRateModel(m RateModel) { k.rateModel = m }

// SetTracer installs an observer of completed activities.
func (k *Kernel) SetTracer(t Tracer) { k.tracer = t }

// SetGlobalReshare switches the kernel to the reference sharing path that
// re-solves the complete flow set on every transition. The default partial
// path produces bit-identical simulated times; this switch exists to verify
// that claim and to measure the speedup.
func (k *Kernel) SetGlobalReshare(on bool) { k.globalReshare = on }

// SetEagerReschedule switches the kernel back to the reference rescheduling
// path that cancels and re-pushes every touched activity's completion event
// on each reshare, even when the solved rate is unchanged. The default lazy
// path leaves events of rate-stable activities in place; this switch exists
// for the lazy-vs-eager equivalence tests and to measure the gain.
func (k *Kernel) SetEagerReschedule(on bool) { k.eagerResched = on }

// eager reports whether rescheduling must be unconditional; the global
// reference path is always eager.
func (k *Kernel) eager() bool { return k.eagerResched || k.globalReshare }

// LazySkips reports how many completion-event reschedules the lazy path
// elided because the activity's solved rate was unchanged.
func (k *Kernel) LazySkips() uint64 { return k.lazySkips }

// DeadlockError reports a simulation that cannot progress: the event queue
// is empty while processes are still blocked.
type DeadlockError struct {
	Time    float64
	Blocked []string // "proc: reason" entries
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("simx: deadlock at t=%g with %d blocked process(es): %s",
		e.Time, len(e.Blocked), strings.Join(e.Blocked, "; "))
}

// Run executes the simulation until no process can progress. It returns the
// final simulated time (the makespan) and a non-nil *DeadlockError if
// processes remained blocked when the event queue drained.
func (k *Kernel) Run() (float64, error) {
	for {
		for !k.runq.Empty() {
			p := k.runq.Pop()
			k.step(p)
			if k.procPanic != nil {
				// A process body panicked: abort the simulation. Blocked
				// process goroutines are abandoned (the kernel is dead).
				return k.now, k.procPanic
			}
		}
		if k.living == 0 && k.pendingTimers == k.queue.Len() {
			// Every process is done and the queue holds nothing but scheduled
			// fault callbacks (every live activity owns a pending non-timer
			// event): firing them could only advance the clock past the real
			// makespan, with no process left to observe the fault.
			break
		}
		ev := k.queue.Pop()
		if ev == nil {
			break
		}
		if ev.Time < k.now {
			// Guard against clock regression; indicates a kernel bug.
			panic(fmt.Sprintf("simx: event at %g before now %g", ev.Time, k.now))
		}
		k.now = ev.Time
		k.handleEvent(ev)
		k.queue.Recycle(ev)
	}
	if k.blocked > 0 {
		var blocked []string
		for _, p := range k.procs {
			if p.state == stateBlocked {
				blocked = append(blocked, p.name+": "+p.blockReason())
			}
		}
		sort.Strings(blocked)
		return k.now, &DeadlockError{Time: k.now, Blocked: blocked}
	}
	return k.now, nil
}

// handleEvent dispatches a fired event to the owning activity, or runs a
// scheduled kernel callback (fault injection).
func (k *Kernel) handleEvent(ev *eventq.Event) {
	a, ok := ev.Payload.(*activity)
	if !ok {
		if te, ok := ev.Payload.(*timerEvent); ok {
			k.pendingTimers--
			te.fn()
			return
		}
		panic("simx: unknown event payload")
	}
	a.doneEv = nil // the fired event is the activity's completion event
	switch a.phase {
	case phaseLatency:
		// Latency paid: the transfer joins the contended flow set.
		a.phase = phaseTransfer
		a.lastUpdate = k.now
		if a.remaining <= 0 {
			k.completeActivity(a)
			return
		}
		k.reshareTransition(a, true)
	case phaseTransfer, phaseCompute, phaseSleep:
		k.completeActivity(a)
	default:
		panic("simx: event on activity in unexpected phase")
	}
}

// completeActivity finishes a and wakes its waiters. The activity is
// recycled: no reference may survive this call.
func (k *Kernel) completeActivity(a *activity) {
	switch a.kind {
	case actCompute:
		h := a.host
		k.removeCompute(h, a)
		k.settleHost(h)
		k.reshareHost(h)
		if k.tracer != nil {
			k.tracer.Compute(a.ownerName, h.Name, a.volume, a.start, k.now)
		}
	case actComm:
		// pos >= 0 distinguishes contended transfers from zero-byte ones
		// that completed straight out of the latency phase.
		if a.phase == phaseTransfer && a.pos >= 0 {
			k.reshareTransition(a, false)
		}
		if k.tracer != nil {
			k.tracer.Comm(a.srcName, a.dstName, a.volume, a.start, k.now)
		}
		// Detach the comm handles so they stay queryable after the
		// activity is recycled. Detached (fire-and-forget) sends have no
		// holder left once the transfer is done, so their handles go
		// straight back to the pool.
		for i, c := range a.comms {
			if c != nil {
				c.done = true
				c.act = nil
				a.comms[i] = nil
				if c.detached {
					k.freeComm(c)
				}
			}
		}
	case actSleep:
		// Nothing to release.
	}
	a.done = true
	for i, w := range a.waiters {
		k.wake(w)
		a.waiters[i] = nil
	}
	a.waiters = a.waiters[:0]
	k.freeActivity(a)
}

// wake moves a blocked process back onto the run queue.
func (k *Kernel) wake(p *Proc) {
	if p.state != stateBlocked {
		panic("simx: waking process that is not blocked: " + p.name)
	}
	p.state = stateRunnable
	p.blockKind = blockNone
	p.blockComm = nil
	k.blocked--
	k.runq.Push(p)
}

// removeCompute takes a out of h's compute set in O(1) via its position.
func (k *Kernel) removeCompute(h *Host, a *activity) {
	last := len(h.computes) - 1
	if a.pos != last {
		moved := h.computes[last]
		h.computes[a.pos] = moved
		moved.pos = a.pos
	}
	h.computes[last] = nil
	h.computes = h.computes[:last]
	a.pos = -1
}

// settleHost updates the progress of every compute activity on h up to now.
func (k *Kernel) settleHost(h *Host) {
	for _, a := range h.computes {
		a.remaining -= a.rate * (k.now - a.lastUpdate)
		if a.remaining < 0 {
			a.remaining = 0
		}
		a.lastUpdate = k.now
	}
}

// reshareHost recomputes the fair share of h's compute activities and
// reschedules their completion events.
func (k *Kernel) reshareHost(h *Host) {
	n := len(h.computes)
	if n == 0 {
		return
	}
	k.rateEpoch++
	share := h.Speed
	if n > h.Cores {
		share = h.Speed * float64(h.Cores) / float64(n)
	}
	for _, a := range h.computes {
		if a.rate == share && a.doneEv != nil && !k.eager() {
			// The fair share did not move (e.g. a burst joined a host with
			// spare cores): the pending completion event is still exact.
			k.lazySkips++
			continue
		}
		a.rate = share
		a.rateEpoch = k.rateEpoch
		k.reschedule(a, a.remaining/a.rate)
	}
}

// addFlow appends a to the contended flow set and to the flow list of every
// link it crosses.
func (k *Kernel) addFlow(a *activity) {
	a.pos = len(k.flows)
	k.flows = append(k.flows, a)
	for _, l := range a.links {
		l.flows = append(l.flows, a)
	}
}

// removeFlow takes a out of the flow set, preserving the start order of the
// remaining flows (the solver's floating-point accumulation order), and out
// of its links' flow lists.
func (k *Kernel) removeFlow(a *activity) {
	copy(k.flows[a.pos:], k.flows[a.pos+1:])
	last := len(k.flows) - 1
	for i := a.pos; i < last; i++ {
		k.flows[i].pos = i
	}
	k.flows[last] = nil
	k.flows = k.flows[:last]
	a.pos = -1
	for _, l := range a.links {
		for i, f := range l.flows {
			if f == a {
				llast := len(l.flows) - 1
				l.flows[i] = l.flows[llast]
				l.flows[llast] = nil
				l.flows = l.flows[:llast]
				break
			}
		}
	}
}

// reshareTransition handles a flow joining (joining=true) or leaving the
// contended set: it settles and re-solves only the connected component of
// flows sharing links with a, leaving disjoint components untouched.
func (k *Kernel) reshareTransition(a *activity, joining bool) {
	if k.globalReshare {
		k.settleFlows(k.flows)
		if joining {
			k.addFlow(a)
		} else {
			k.removeFlow(a)
		}
		k.reshareFlows(k.flows)
		return
	}

	// Mark the connected component reachable from a through shared links.
	k.epoch++
	e := k.epoch
	a.mark = e
	k.compStack = append(k.compStack[:0], a)
	for n := len(k.compStack); n > 0; n = len(k.compStack) {
		f := k.compStack[n-1]
		k.compStack[n-1] = nil
		k.compStack = k.compStack[:n-1]
		for _, l := range f.links {
			if l.mark == e {
				continue
			}
			l.mark = e
			for _, g := range l.flows {
				if g.mark != e {
					g.mark = e
					k.compStack = append(k.compStack, g)
				}
			}
		}
	}

	// Update membership first, then settle and gather the marked flows in
	// one pass over the flow list, in start order, so the solver's
	// arithmetic matches what a global solve would do. Settling after the
	// membership change is safe: rates have not been touched yet, and a
	// itself needs no settling (it either just joined with lastUpdate=now
	// and rate 0, or just completed and is gone from the list).
	if joining {
		k.addFlow(a)
	} else {
		k.removeFlow(a)
	}
	k.comp = k.comp[:0]
	for _, f := range k.flows {
		if f.mark != e {
			continue
		}
		f.remaining -= f.rate * (k.now - f.lastUpdate)
		if f.remaining < 0 {
			f.remaining = 0
		}
		f.lastUpdate = k.now
		k.comp = append(k.comp, f)
	}
	k.reshareFlows(k.comp)
}

// settleFlows updates the progress of the given flows up to now.
func (k *Kernel) settleFlows(flows []*activity) {
	for _, a := range flows {
		a.remaining -= a.rate * (k.now - a.lastUpdate)
		if a.remaining < 0 {
			a.remaining = 0
		}
		a.lastUpdate = k.now
	}
}

// reshareFlows recomputes the max-min fair allocation over the given flows
// and reschedules their completion events.
func (k *Kernel) reshareFlows(flows []*activity) {
	if len(flows) == 0 {
		return
	}
	k.rateEpoch++
	k.maxmin.solve(flows)
	for _, a := range flows {
		// The bandwidth factor models protocol efficiency: the flow occupies
		// its allocated share but progresses at bwFactor times it.
		rate := a.allocated * a.bwFactor
		if rate <= 0 {
			rate = math.SmallestNonzeroFloat64
		}
		if rate == a.rate && a.doneEv != nil && !k.eager() {
			// Rate-epoch lazy rescheduling: the solver handed the flow the
			// same share it already progresses at, so its pending completion
			// event is still exact — skip the cancel+push churn. (Settling
			// above only moved progress bookkeeping to now; it does not move
			// the completion instant.)
			k.lazySkips++
			continue
		}
		a.rate = rate
		a.rateEpoch = k.rateEpoch
		k.reschedule(a, a.remaining/a.rate)
	}
}

// reschedule moves a's completion event to now+dt, sifting the pending event
// in place when there is one (no free-list round-trip on the hot path).
func (k *Kernel) reschedule(a *activity, dt float64) {
	if math.IsInf(dt, 0) || math.IsNaN(dt) {
		panic(fmt.Sprintf("simx: invalid completion delay %g for activity of %q", dt, a.ownerName))
	}
	if a.doneEv != nil && k.queue.Update(a.doneEv, k.now+dt) {
		return
	}
	a.doneEv = k.queue.Push(k.now+dt, a)
}
