package simx

import (
	"fmt"
	"testing"
)

// buildRouterKernel populates k with a small two-"cluster" platform: hosts
// a0,a1 behind backbone A, hosts b0,b1 behind backbone B, a wan link between
// them, and full pairwise routes. Routes are added through k.AddRoute, so
// they land in whatever router is installed.
func buildRouterKernel(k *Kernel) {
	hosts := []string{"a0", "a1", "b0", "b1"}
	up := make(map[string]*Link)
	for _, h := range hosts {
		k.AddHost(h, 1e9, 1)
		up[h] = k.AddLink(h+"_up", 1.25e8, 1e-5)
	}
	bbA := k.AddLink("bbA", 1.25e9, 1e-5)
	bbB := k.AddLink("bbB", 1.25e9, 1e-5)
	wan := k.AddLink("wan", 1.25e9, 1e-3)
	bb := func(h string) *Link {
		if h[0] == 'a' {
			return bbA
		}
		return bbB
	}
	for _, s := range hosts {
		for _, d := range hosts {
			if s == d {
				continue
			}
			if s[0] == d[0] {
				k.AddRoute(s, d, []*Link{up[s], bb(s), up[d]})
			} else {
				k.AddRoute(s, d, []*Link{up[s], bb(s), wan, bb(d), up[d]})
			}
		}
	}
}

// TestTableRouterMatchesStringTable pins the dense pair-keyed default table
// against the historical "src|dst" string-keyed reference: every pair must
// resolve to the same links and latency, and a simulation driven through
// either router must finish at the bit-identical instant.
func TestTableRouterMatchesStringTable(t *testing.T) {
	dense := New()
	buildRouterKernel(dense)
	ref := New()
	ref.SetRouter(NewStringTableRouter())
	buildRouterKernel(ref)

	hosts := []string{"a0", "a1", "b0", "b1"}
	for _, s := range hosts {
		for _, d := range hosts {
			if s == d {
				continue
			}
			rd := dense.Router().Route(dense.Host(s), dense.Host(d))
			rs := ref.Router().Route(ref.Host(s), ref.Host(d))
			if rd == nil || rs == nil {
				t.Fatalf("%s->%s: route missing (dense=%v ref=%v)", s, d, rd, rs)
			}
			if rd.Latency != rs.Latency {
				t.Fatalf("%s->%s: latency %g != %g", s, d, rd.Latency, rs.Latency)
			}
			if len(rd.Links) != len(rs.Links) {
				t.Fatalf("%s->%s: %d links != %d", s, d, len(rd.Links), len(rs.Links))
			}
			for i := range rd.Links {
				if rd.Links[i].Name != rs.Links[i].Name {
					t.Fatalf("%s->%s link %d: %q != %q", s, d, i, rd.Links[i].Name, rs.Links[i].Name)
				}
			}
		}
	}

	run := func(k *Kernel) float64 {
		k.Spawn("s0", k.Host("a0"), func(p *Proc) { p.Send("m0", 5e6, nil) })
		k.Spawn("r0", k.Host("b1"), func(p *Proc) { p.Recv("m0") })
		k.Spawn("s1", k.Host("a1"), func(p *Proc) { p.Send("m1", 3e6, nil) })
		k.Spawn("r1", k.Host("b0"), func(p *Proc) { p.Recv("m1") })
		end, err := k.Run()
		if err != nil {
			t.Fatal(err)
		}
		return end
	}
	if td, ts := run(dense), run(ref); td != ts {
		t.Fatalf("dense router makespan %v != string-keyed %v", td, ts)
	}
}

// TestAddRouteRejectsNonAdderRouter: a router without explicit-route support
// must make AddRoute panic instead of silently dropping the route.
func TestAddRouteRejectsNonAdderRouter(t *testing.T) {
	k := New()
	k.AddHost("a", 1e9, 1)
	k.AddHost("b", 1e9, 1)
	l := k.AddLink("l", 1e8, 1e-5)
	k.SetRouter(routeFunc(func(src, dst *Host) *Route { return nil }))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic adding a route to a non-adder router")
		}
	}()
	k.AddRoute("a", "b", []*Link{l})
}

// routeFunc adapts a function to the Router interface.
type routeFunc func(src, dst *Host) *Route

func (f routeFunc) Route(src, dst *Host) *Route { return f(src, dst) }

// TestComputedRouterResolution drives a transfer through a router that
// composes the route on demand and checks the kernel caches the resolution
// (the router is consulted once per pair).
func TestComputedRouterResolution(t *testing.T) {
	k := New()
	a := k.AddHost("a", 1e9, 1)
	b := k.AddHost("b", 1e9, 1)
	l := k.AddLink("l", 1.25e8, 2e-5)
	calls := 0
	k.SetRouter(routeFunc(func(src, dst *Host) *Route {
		calls++
		return NewRoute([]*Link{l})
	}))
	if a.ID() == b.ID() {
		t.Fatalf("dense host ids collide: %d", a.ID())
	}
	k.Spawn("s", a, func(p *Proc) {
		p.Send("m", 1e6, nil)
		p.Send("m", 1e6, nil)
	})
	k.Spawn("r", b, func(p *Proc) { p.Recv("m"); p.Recv("m") })
	end, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * (2e-5 + 1e6/1.25e8)
	if !almost(end, want) {
		t.Fatalf("makespan %g, want %g", end, want)
	}
	if calls != 1 {
		t.Fatalf("router consulted %d times for one pair, want 1 (cached)", calls)
	}
}

// TestFatpipeSharing checks the sharing-policy axis of the max-min model:
// two concurrent flows over a shared link halve its bandwidth, while the
// same two flows over a fatpipe each progress at the full rate.
func TestFatpipeSharing(t *testing.T) {
	const bw, lat, bytes = 1e8, 1e-5, 1e6
	for _, tc := range []struct {
		sharing Sharing
		want    float64
	}{
		{SharingShared, lat + 2*bytes/bw}, // half bandwidth each
		{SharingFatpipe, lat + bytes/bw},  // full bandwidth each
	} {
		k := New()
		k.AddHost("s0", 1e9, 1)
		k.AddHost("s1", 1e9, 1)
		k.AddHost("d0", 1e9, 1)
		k.AddHost("d1", 1e9, 1)
		l := k.AddLink("fabric", bw, lat)
		l.Sharing = tc.sharing
		k.AddRoute("s0", "d0", []*Link{l})
		k.AddRoute("s1", "d1", []*Link{l})
		k.Spawn("p0", k.Host("s0"), func(p *Proc) { p.Send("m0", bytes, nil) })
		k.Spawn("p1", k.Host("d0"), func(p *Proc) { p.Recv("m0") })
		k.Spawn("p2", k.Host("s1"), func(p *Proc) { p.Send("m1", bytes, nil) })
		k.Spawn("p3", k.Host("d1"), func(p *Proc) { p.Recv("m1") })
		end, err := k.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !almost(end, tc.want) {
			t.Fatalf("sharing=%d: makespan %g, want %g", tc.sharing, end, tc.want)
		}
	}
}

// TestFatpipeMixedPath: a flow crossing a fatpipe and a narrower shared link
// is constrained by the shared link alone; the fatpipe never becomes the
// bottleneck for contending flows.
func TestFatpipeMixedPath(t *testing.T) {
	const lat = 1e-5
	k := New()
	for i := 0; i < 4; i++ {
		k.AddHost(fmt.Sprintf("h%d", i), 1e9, 1)
	}
	fat := k.AddLink("fat", 1e9, lat)
	fat.Sharing = SharingFatpipe
	narrow0 := k.AddLink("n0", 1e8, lat)
	narrow1 := k.AddLink("n1", 1e8, lat)
	k.AddRoute("h0", "h1", []*Link{narrow0, fat})
	k.AddRoute("h2", "h3", []*Link{narrow1, fat})
	k.Spawn("a", k.Host("h0"), func(p *Proc) { p.Send("ma", 1e6, nil) })
	k.Spawn("b", k.Host("h1"), func(p *Proc) { p.Recv("ma") })
	k.Spawn("c", k.Host("h2"), func(p *Proc) { p.Send("mc", 1e6, nil) })
	k.Spawn("d", k.Host("h3"), func(p *Proc) { p.Recv("mc") })
	end, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Both flows run concurrently at their private narrow-link rate: the
	// shared fatpipe does not split its 1e9 between them.
	want := 2*lat + 1e6/1e8
	if !almost(end, want) {
		t.Fatalf("makespan %g, want %g (fatpipe must not contend)", end, want)
	}
}

func almost(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-12+1e-9*b
}
