package simx

import (
	"math"
	"testing"
)

// recordFailure returns a deferred-recover helper storing the fail-stop error
// that killed the process (if any) in *out, re-raising any other panic.
func recordFailure(out **FailedError) func() {
	return func() {
		r := recover()
		if r == nil {
			return
		}
		if fe := FailureOf(r); fe != nil {
			*out = fe
			return
		}
		panic(r)
	}
}

func TestFailHostKillsRunningCompute(t *testing.T) {
	k := New()
	h := k.AddHost("h", 1e9, 1)
	var fe *FailedError
	finished := false
	k.Spawn("p", h, func(p *Proc) {
		defer recordFailure(&fe)()
		p.Execute(10e9) // 10 s of work
		finished = true
	})
	k.FailHostAt("h", 2.0)
	end, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if finished {
		t.Fatal("compute survived its host's fail-stop")
	}
	if fe == nil {
		t.Fatal("process body did not observe the failure")
	}
	if fe.Kind != "host" || fe.Name != "h" || !close(fe.Time, 2.0) {
		t.Fatalf("failure = %+v, want host h at t=2", fe)
	}
	if !close(end, 2.0) {
		t.Fatalf("makespan = %g, want 2.0 (simulation ends at the fault)", end)
	}
	if !k.Host("h").Off() {
		t.Fatal("host not marked off")
	}
}

func TestFailHostKillsTransferAndNotifiesPeer(t *testing.T) {
	k, a, b := twoHostKernel()
	var senderErr, recvErr *FailedError
	k.Spawn("sender", a, func(p *Proc) {
		defer recordFailure(&senderErr)()
		p.Send("mb", 1e9, nil) // 10 s transfer at 1e8 B/s
	})
	k.Spawn("recv", b, func(p *Proc) {
		defer recordFailure(&recvErr)()
		p.Recv("mb")
	})
	k.FailHostAt("b", 3.0)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if recvErr == nil || recvErr.Kind != "host" || recvErr.Name != "b" {
		t.Fatalf("dead-host receiver error = %+v, want its own host failure", recvErr)
	}
	if senderErr == nil {
		t.Fatal("surviving sender did not observe the peer's death")
	}
	if senderErr.Kind != "host" || senderErr.Name != "b" || !close(senderErr.Time, 3.0) {
		t.Fatalf("sender failure = %+v, want host b at t=3", senderErr)
	}
	_ = a
}

func TestFailHostWakesProcBlockedOnUnmatchedRecv(t *testing.T) {
	// The receiver is blocked waiting for a match (no activity exists): the
	// fail-stop must wake it directly into the kill signal, or the
	// simulation would deadlock on a dead process.
	k, _, b := twoHostKernel()
	var fe *FailedError
	k.Spawn("recv", b, func(p *Proc) {
		defer recordFailure(&fe)()
		p.Recv("never")
	})
	k.FailHostAt("b", 1.0)
	end, err := k.Run()
	if err != nil {
		t.Fatalf("unexpected error (deadlock?): %v", err)
	}
	if fe == nil || fe.Name != "b" {
		t.Fatalf("failure = %+v, want host b", fe)
	}
	if !close(end, 1.0) {
		t.Fatalf("makespan = %g, want 1.0", end)
	}
}

func TestSendToDeadHostFailsAtMatch(t *testing.T) {
	// The receiver's host dies before the send is posted: the queued recv
	// handle is matched lazily and the rendezvous fails instead of starting.
	k, a, b := twoHostKernel()
	var senderErr, recvErr *FailedError
	k.Spawn("recv", b, func(p *Proc) {
		defer recordFailure(&recvErr)()
		p.Recv("mb")
	})
	k.Spawn("sender", a, func(p *Proc) {
		defer recordFailure(&senderErr)()
		p.Sleep(2.0) // post after b is gone
		p.Send("mb", 1e6, nil)
	})
	k.FailHostAt("b", 1.0)
	if _, err := k.Run(); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if recvErr == nil || recvErr.Name != "b" {
		t.Fatalf("receiver failure = %+v, want host b", recvErr)
	}
	if senderErr == nil {
		t.Fatal("sender matched a dead receiver without failing")
	}
	if senderErr.Kind != "host" || senderErr.Name != "b" || !close(senderErr.Time, 2.0) {
		t.Fatalf("sender failure = %+v, want host b observed at t=2", senderErr)
	}
}

func TestOperationsOnDeadHostFailImmediately(t *testing.T) {
	k := New()
	h := k.AddHost("h", 1e9, 1)
	var fe *FailedError
	steps := 0
	k.Spawn("p", h, func(p *Proc) {
		defer recordFailure(&fe)()
		p.Sleep(2.0)
		steps++
		p.Execute(1e9) // host died at t=1: must not run
		steps++
	})
	k.FailHostAt("h", 1.0)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fe == nil || steps != 0 {
		t.Fatalf("failure = %+v after %d steps, want kill at first wake with 0 steps", fe, steps)
	}
}

func TestFailRouteKillsCrossingFlowAndFailsLaterMatches(t *testing.T) {
	k, a, b := twoHostKernel()
	var firstErr, lateErr *FailedError
	k.Spawn("sender", a, func(p *Proc) {
		defer recordFailure(&firstErr)()
		p.Send("mb", 1e9, nil) // 10 s transfer, killed at t=3
	})
	k.Spawn("recv", b, func(p *Proc) {
		// The receive side of the killed transfer also unwinds.
		defer recordFailure(new(*FailedError))()
		p.Recv("mb")
	})
	k.Spawn("late-send", a, func(p *Proc) {
		defer recordFailure(&lateErr)()
		p.Sleep(5.0)
		p.Send("mb2", 1e6, nil)
	})
	k.Spawn("late-recv", b, func(p *Proc) {
		defer recordFailure(new(*FailedError))()
		p.Sleep(5.0)
		p.Recv("mb2")
	})
	k.FailRouteAt("a", "b", 3.0)
	if _, err := k.Run(); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if firstErr == nil || firstErr.Kind != "link" || !close(firstErr.Time, 3.0) {
		t.Fatalf("in-flight sender failure = %+v, want link kill at t=3", firstErr)
	}
	if lateErr == nil || lateErr.Kind != "link" || lateErr.Name != "ab" {
		t.Fatalf("post-failure sender failure = %+v, want link ab at match", lateErr)
	}
	if !k.Link("ab").Off() {
		t.Fatal("link not marked off")
	}
}

func TestDegradeHostWindow(t *testing.T) {
	// 1 Gflop/s host, 4 Gflop of work. Degraded to half speed over [1, 3):
	// 1 s at full (1 Gflop) + 2 s at half (1 Gflop) + 2 s at full (2 Gflop)
	// = 4 Gflop done at t=5.
	k := New()
	k.AddHost("h", 1e9, 1)
	k.Spawn("p", k.Host("h"), func(p *Proc) {
		p.Execute(4e9)
	})
	k.DegradeHostAt("h", 0.5, 1.0, 3.0)
	end, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !close(end, 5.0) {
		t.Fatalf("makespan = %g, want 5.0", end)
	}
	if got := k.Host("h").Speed; got != 1e9 {
		t.Fatalf("host speed after window = %g, want bit-exact 1e9", got)
	}
}

func TestDegradeLinkWindow(t *testing.T) {
	// 1e8 B/s link, 4e8 B transfer (latency 1 ms). Degraded to half
	// bandwidth over [1, 3): 1 s full (1e8 B) + 2 s half (1e8 B) + 2 s full
	// (2e8 B) = 4e8 B done at t = 5 + latency.
	k, a, b := twoHostKernel()
	k.Spawn("sender", a, func(p *Proc) {
		p.Send("mb", 4e8, nil)
	})
	k.Spawn("recv", b, func(p *Proc) {
		p.Recv("mb")
	})
	k.DegradeLinkAt("ab", 0.5, 1.0+1e-3, 3.0+1e-3)
	end, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !close(end, 5.0+1e-3) {
		t.Fatalf("makespan = %g, want 5.001", end)
	}
	if got := k.Link("ab").Bandwidth; got != 1e8 {
		t.Fatalf("link bandwidth after window = %g, want bit-exact 1e8", got)
	}
}

func TestDegradeAllLinksMatchesSingleLink(t *testing.T) {
	run := func(global bool) float64 {
		k, a, b := twoHostKernel()
		k.Spawn("sender", a, func(p *Proc) { p.Send("mb", 4e8, nil) })
		k.Spawn("recv", b, func(p *Proc) { p.Recv("mb") })
		if global {
			k.DegradeAllLinksAt(0.5, 1.0, 3.0)
		} else {
			k.DegradeLinkAt("ab", 0.5, 1.0, 3.0)
		}
		end, err := k.Run()
		if err != nil {
			t.Fatal(err)
		}
		return end
	}
	g, s := run(true), run(false)
	if g != s {
		t.Fatalf("global bw degradation %g != per-link %g (bit-exact expected: one link)", g, s)
	}
}

func TestDegradeAllHostsWindow(t *testing.T) {
	k, a, b := twoHostKernel()
	for _, h := range []*Host{a, b} {
		k.Spawn("p", h, func(p *Proc) { p.Execute(4e9) })
	}
	k.DegradeAllHostsAt(0.5, 1.0, 3.0)
	end, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !close(end, 5.0) {
		t.Fatalf("makespan = %g, want 5.0 on both hosts", end)
	}
	if a.Speed != 1e9 || b.Speed != 1e9 {
		t.Fatalf("speeds after window = %g, %g, want bit-exact 1e9", a.Speed, b.Speed)
	}
}

func TestFaultAfterSimulationEndDoesNotExtendMakespan(t *testing.T) {
	k := New()
	h := k.AddHost("h", 1e9, 1)
	k.Spawn("p", h, func(p *Proc) {
		p.Execute(1e9) // done at t=1
	})
	k.FailHostAt("h", 100.0)
	k.DegradeHostAt("h", 0.5, 200.0, 300.0)
	end, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !close(end, 1.0) {
		t.Fatalf("makespan = %g, want 1.0 (pending fault timers must not advance the clock)", end)
	}
}

func TestFailHostIsIdempotent(t *testing.T) {
	k := New()
	h := k.AddHost("h", 1e9, 1)
	var fe *FailedError
	k.Spawn("p", h, func(p *Proc) {
		defer recordFailure(&fe)()
		p.Execute(10e9)
	})
	k.FailHostAt("h", 2.0)
	k.FailHostAt("h", 2.5) // second fail-stop of a dead host: no-op
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fe == nil || !close(fe.Time, 2.0) {
		t.Fatalf("failure = %+v, want the first fail-stop at t=2", fe)
	}
}

func TestWaitCommOnKilledISend(t *testing.T) {
	// The handle of an in-flight ISend outlives the kill: waiting on it later
	// raises the recorded failure.
	k, a, b := twoHostKernel()
	var fe *FailedError
	var failedComm *FailedError
	k.Spawn("sender", a, func(p *Proc) {
		defer recordFailure(&fe)()
		c := p.ISend("mb", 1e9, nil)
		p.Sleep(5.0) // transfer killed at t=3 while we sleep
		failedComm = c.Failed()
		p.WaitComm(c)
	})
	k.Spawn("recv", b, func(p *Proc) {
		defer recordFailure(new(*FailedError))()
		p.Recv("mb")
	})
	k.FailHostAt("b", 3.0)
	if _, err := k.Run(); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if failedComm == nil || failedComm.Name != "b" {
		t.Fatalf("Comm.Failed() = %+v, want host b failure recorded on the handle", failedComm)
	}
	if fe == nil || fe.Name != "b" {
		t.Fatalf("WaitComm on killed comm: failure = %+v, want host b", fe)
	}
}

func TestFailSpareHostLeavesOthersUntouched(t *testing.T) {
	// Killing an idle bystander must not perturb the survivors' timing.
	base := func(fail bool) float64 {
		k := New()
		k.AddHost("a", 1e9, 1)
		k.AddHost("spare", 1e9, 1)
		k.Spawn("p", k.Host("a"), func(p *Proc) { p.Execute(4e9) })
		if fail {
			k.FailHostAt("spare", 1.0)
		}
		end, err := k.Run()
		if err != nil {
			t.Fatal(err)
		}
		return end
	}
	if w, f := base(false), base(true); w != f {
		t.Fatalf("bystander fail-stop changed makespan: %g != %g", f, w)
	}
}

func TestFaultedRunIsDeterministic(t *testing.T) {
	// Same platform, same faults: bit-identical makespan and failure times
	// across repeated runs.
	run := func() (float64, []float64) {
		k, a, b := twoHostKernel()
		var times []float64
		for i := 0; i < 3; i++ {
			k.Spawn("s", a, func(p *Proc) {
				defer func() {
					if fe := FailureOf(recover()); fe != nil {
						times = append(times, fe.Time)
					}
				}()
				p.Send("mb", 5e8, nil)
				p.Send("mb", 5e8, nil)
			})
			k.Spawn("r", b, func(p *Proc) {
				defer func() {
					if fe := FailureOf(recover()); fe != nil {
						times = append(times, fe.Time)
					}
				}()
				p.Recv("mb")
				p.Recv("mb")
			})
		}
		k.FailHostAt("b", 4.0)
		k.DegradeLinkAt("ab", 0.25, 1.0, 2.0)
		end, err := k.Run()
		if err != nil {
			t.Fatal(err)
		}
		return end, times
	}
	e1, t1 := run()
	e2, t2 := run()
	if e1 != e2 {
		t.Fatalf("makespans differ across identical faulted runs: %v != %v", e1, e2)
	}
	if len(t1) != len(t2) {
		t.Fatalf("failure counts differ: %d != %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("failure time %d differs: %v != %v", i, t1[i], t2[i])
		}
	}
	if len(t1) != 6 {
		t.Fatalf("got %d failures, want all 6 procs killed", len(t1))
	}
}

func TestZeroFaultPathStaysInert(t *testing.T) {
	// No fault scheduled: the rendezvous fast path must never take the
	// failure branch (faultsActive stays false).
	k, a, b := twoHostKernel()
	k.Spawn("s", a, func(p *Proc) { p.Send("mb", 1e6, nil) })
	k.Spawn("r", b, func(p *Proc) { p.Recv("mb") })
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.faultsActive {
		t.Fatal("faultsActive set without any scheduled fault")
	}
	if k.pendingTimers != 0 {
		t.Fatalf("pendingTimers = %d, want 0", k.pendingTimers)
	}
}

func TestFailedErrorMessage(t *testing.T) {
	e := &FailedError{Kind: "host", Name: "n3", Time: 1.5}
	want := "simx: host n3 failed at t=1.5"
	if e.Error() != want {
		t.Fatalf("Error() = %q, want %q", e.Error(), want)
	}
	if FailureOf(nil) != nil || FailureOf("boom") != nil {
		t.Fatal("FailureOf must return nil for non-kill panics")
	}
}

func TestDegradeWindowRestoresExactSpeedAfterConcurrency(t *testing.T) {
	// Regression guard for the exact-restore design: the restore writes the
	// saved value, not prev/factor, so no FP drift ever accumulates.
	k := New()
	h := k.AddHost("h", 3.3e9, 2)
	k.Spawn("p", h, func(p *Proc) { p.Execute(20e9) })
	k.Spawn("q", h, func(p *Proc) { p.Execute(20e9) })
	k.DegradeHostAt("h", 1.0/3.0, 0.5, 1.5)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if h.Speed != 3.3e9 {
		t.Fatalf("restored speed %v != original 3.3e9 (bit-exact)", h.Speed)
	}
	if math.Signbit(h.Speed) {
		t.Fatal("sign corrupted")
	}
}
