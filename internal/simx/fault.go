package simx

import (
	"fmt"

	"tireplay/internal/eventq"
)

// This file is the kernel's fault layer: scheduled fail-stop of hosts and
// routes, and windowed speed/bandwidth degradations, all injected through
// the ordinary event queue so they interleave deterministically with the
// simulation. A fail-stop kills the running activities touching the dead
// resource with a typed *FailedError; a degradation re-enters the partial
// max-min reshare with the scaled capacity. Nothing here runs — and the
// rendezvous path pays no extra check — until the first fault is scheduled
// (faultsActive), so the zero-fault hot path is byte- and alloc-identical
// to a kernel without faults.

// FailedError describes a fail-stop fault observed by a simulated process:
// the resource it was using (its own host, a peer's host, a route link)
// stopped. Process bodies recover it with FailureOf.
type FailedError struct {
	Kind string  // "host" or "link"
	Name string  // failed resource ("node3", "a->b" for a failed route)
	Time float64 // simulated time the failure was observed
}

func (e *FailedError) Error() string {
	return fmt.Sprintf("simx: %s %s failed at t=%g", e.Kind, e.Name, e.Time)
}

// killSignal is the panic payload unwinding a process killed by a fail-stop:
// the blocked operation can never complete, so the process body is aborted.
// Spawn's recover treats it as a normal death (not a procPanic); bodies that
// want to record the failure recover it themselves via FailureOf.
type killSignal struct{ err *FailedError }

// FailureOf extracts the fail-stop error from a recovered panic value. It
// returns nil for any other panic (including nil), so a process body can
// write:
//
//	defer func() {
//		if fe := simx.FailureOf(recover()); fe != nil { ... record ... }
//	}()
//
// Non-kill panics must be re-raised by the caller.
func FailureOf(r any) *FailedError {
	if ks, ok := r.(killSignal); ok {
		return ks.err
	}
	return nil
}

// ensureAlive aborts the calling process when its host has fail-stopped, so
// a killed process cannot touch kernel state again. Every simulation call
// starts with it; the check is one nil comparison.
func (p *Proc) ensureAlive() {
	if p.failed != nil {
		panic(killSignal{p.failed})
	}
}

// Off reports whether the host has fail-stopped.
func (h *Host) Off() bool { return h.off }

// Off reports whether the link has fail-stopped.
func (l *Link) Off() bool { return l.off }

// timerEvent is the event payload of a scheduled kernel callback.
type timerEvent struct{ fn func() }

// At schedules fn to run at simulated time t, interleaved deterministically
// with activity completions (FIFO among same-time events). Times before the
// current clock are clamped to now. Scheduling any callback arms the
// fault-check path of the rendezvous machinery.
func (k *Kernel) At(t float64, fn func()) {
	if t < k.now {
		t = k.now
	}
	k.faultsActive = true
	k.pendingTimers++
	k.queue.Push(t, &timerEvent{fn: fn})
}

// FailHostAt schedules a fail-stop of the named host at simulated time t:
// the host goes off, its running computes, sleeps and transfers (either
// endpoint) are killed with a *FailedError, its processes die at their next
// simulation call, and later rendezvous with it fail instead of matching.
func (k *Kernel) FailHostAt(name string, t float64) {
	h := k.hosts[name]
	if h == nil {
		panic("simx: FailHostAt of undeclared host " + name)
	}
	k.At(t, func() {
		k.failHost(h, &FailedError{Kind: "host", Name: h.Name, Time: k.now})
	})
}

// FailRouteAt schedules a fail-stop of every link on the src->dst route at
// simulated time t: flows crossing any of those links are killed, and later
// transfers routed over them fail at rendezvous.
func (k *Kernel) FailRouteAt(src, dst string, t float64) {
	s, d := k.hosts[src], k.hosts[dst]
	if s == nil || d == nil {
		panic(fmt.Sprintf("simx: FailRouteAt between undeclared hosts %q -> %q", src, dst))
	}
	k.At(t, func() {
		for _, l := range k.routeBetween(s, d).Links {
			l.off = true
		}
		err := &FailedError{Kind: "link", Name: s.Name + "->" + d.Name, Time: k.now}
		k.collectDoomed(func(a *activity) bool {
			if a.kind != actComm {
				return false
			}
			for _, l := range a.links {
				if l.off {
					return true
				}
			}
			return false
		})
		for _, a := range k.doomed {
			k.killActivity(a, err)
		}
	})
}

// failHost is the fail-stop implementation: mark the host and its processes
// dead, kill every live activity touching it, then wake any of its processes
// still blocked on an unmatched rendezvous (they have no activity to kill).
func (k *Kernel) failHost(h *Host, err *FailedError) {
	if h.off {
		return
	}
	h.off = true
	for _, p := range k.procs {
		if p.host == h && p.state != stateFinished && p.failed == nil {
			p.failed = err
		}
	}
	k.collectDoomed(func(a *activity) bool {
		switch a.kind {
		case actCompute:
			return a.host == h
		case actComm:
			return a.srcHost == h || a.dstHost == h
		case actSleep:
			return a.owner != nil && a.owner.host == h
		}
		return false
	})
	for _, a := range k.doomed {
		k.killActivity(a, err)
	}
	for _, p := range k.procs {
		if p.host == h && p.state == stateBlocked {
			// Blocked on an unmatched rendezvous: there is no activity to
			// kill, so wake the process directly — and take it out of the
			// handle's waiter list, or a later failMatch of that (still
			// queued) handle would wake a dead process.
			if p.blockComm != nil {
				removeMatchWaiter(p.blockComm, p)
			}
			k.wake(p)
		}
	}
}

// removeMatchWaiter deletes p from c's match-waiter list, if present.
func removeMatchWaiter(c *Comm, p *Proc) {
	for i, w := range c.matchWaiters {
		if w == p {
			last := len(c.matchWaiters) - 1
			c.matchWaiters[i] = c.matchWaiters[last]
			c.matchWaiters[last] = nil
			c.matchWaiters = c.matchWaiters[:last]
			return
		}
	}
}

// collectDoomed gathers the live activities selected by doomedFn into the
// kernel's scratch list. Every live activity owns exactly one pending
// completion event, so one pass over the event queue finds them all; the
// heap order is deterministic for a given simulation history.
func (k *Kernel) collectDoomed(doomedFn func(*activity) bool) {
	k.doomed = k.doomed[:0]
	k.queue.Each(func(ev *eventq.Event) {
		if a, ok := ev.Payload.(*activity); ok && doomedFn(a) {
			k.doomed = append(k.doomed, a)
		}
	})
}

// killActivity aborts a live activity: its completion event is cancelled,
// its resource bookkeeping is unwound (with a partial reshare for flows in
// the contended set), and its waiters are woken into the kill signal
// carrying err. The activity is recycled; no reference may survive.
func (k *Kernel) killActivity(a *activity, err *FailedError) {
	if a.doneEv != nil {
		k.queue.Remove(a.doneEv)
		k.queue.Recycle(a.doneEv)
		a.doneEv = nil
	}
	switch a.kind {
	case actCompute:
		h := a.host
		k.removeCompute(h, a)
		if !h.off {
			// Killed on a live host (not reachable today, kept for safety):
			// the survivors' shares grow like after a normal completion.
			k.settleHost(h)
			k.reshareHost(h)
		}
	case actComm:
		if a.phase == phaseTransfer && a.pos >= 0 {
			k.reshareTransition(a, false)
		}
		for i, c := range a.comms {
			if c != nil {
				c.done = true
				c.failed = err
				c.act = nil
				a.comms[i] = nil
				if c.detached {
					k.freeComm(c)
				}
			}
		}
	case actSleep:
		// Nothing to release.
	}
	a.done = true
	for i, w := range a.waiters {
		if w.failed == nil {
			w.opFailed = err
		}
		k.wake(w)
		a.waiters[i] = nil
	}
	a.waiters = a.waiters[:0]
	k.freeActivity(a)
}

// failMatch fails a rendezvous instead of starting its transfer: both
// handles complete with err attached and their match waiters are woken into
// the kill signal (a surviving peer observes its partner's death).
func (k *Kernel) failMatch(sc, rc *Comm, err *FailedError) {
	for _, c := range [2]*Comm{sc, rc} {
		c.done = true
		c.failed = err
		for i, w := range c.matchWaiters {
			if w.failed == nil {
				w.opFailed = err
			}
			k.wake(w)
			c.matchWaiters[i] = nil
		}
		c.matchWaiters = c.matchWaiters[:0]
		if c.detached {
			k.freeComm(c)
		}
	}
}

// routeFailure reports the fail-stop a transfer between the two hosts would
// observe: a dead endpoint first, then the first dead link of the route.
func (k *Kernel) routeFailure(src, dst *Host) *FailedError {
	if src.off {
		return &FailedError{Kind: "host", Name: src.Name, Time: k.now}
	}
	if dst.off {
		return &FailedError{Kind: "host", Name: dst.Name, Time: k.now}
	}
	for _, l := range k.routeBetween(src, dst).Links {
		if l.off {
			return &FailedError{Kind: "link", Name: l.Name, Time: k.now}
		}
	}
	return nil
}

// DegradeHostAt scales the host's per-core speed by factor over the
// simulated window [from, to): running computes are settled at the old rate
// and re-shared at the new one, exactly like any other capacity transition.
// The original speed is restored bit-exactly at to. Windows on the same
// host must not overlap.
func (k *Kernel) DegradeHostAt(name string, factor, from, to float64) {
	h := k.hosts[name]
	if h == nil {
		panic("simx: DegradeHostAt of undeclared host " + name)
	}
	if factor <= 0 {
		panic("simx: DegradeHostAt with non-positive factor")
	}
	var prev float64
	k.At(from, func() {
		k.settleHost(h)
		prev = h.Speed
		h.Speed = prev * factor
		k.reshareHost(h)
	})
	k.At(to, func() {
		k.settleHost(h)
		h.Speed = prev
		k.reshareHost(h)
	})
}

// DegradeLinkAt scales the link's bandwidth by factor over the simulated
// window [from, to): the flows crossing it are settled and their connected
// component re-enters the partial max-min reshare with the scaled capacity.
// The original bandwidth is restored bit-exactly at to. Windows on the same
// link must not overlap.
func (k *Kernel) DegradeLinkAt(name string, factor, from, to float64) {
	l := k.links[name]
	if l == nil {
		panic("simx: DegradeLinkAt of undeclared link " + name)
	}
	if factor <= 0 {
		panic("simx: DegradeLinkAt with non-positive factor")
	}
	var prev float64
	k.At(from, func() {
		prev = l.Bandwidth
		l.Bandwidth = prev * factor
		k.reshareLink(l)
	})
	k.At(to, func() {
		l.Bandwidth = prev
		k.reshareLink(l)
	})
}

// DegradeAllHostsAt applies DegradeHostAt's window to every declared host,
// in declaration order (an availability trough: e.g. co-scheduled noise).
func (k *Kernel) DegradeAllHostsAt(factor, from, to float64) {
	if factor <= 0 {
		panic("simx: DegradeAllHostsAt with non-positive factor")
	}
	prev := make([]float64, len(k.hostList))
	k.At(from, func() {
		for i, h := range k.hostList {
			k.settleHost(h)
			prev[i] = h.Speed
			h.Speed = prev[i] * factor
			k.reshareHost(h)
		}
	})
	k.At(to, func() {
		for i, h := range k.hostList {
			k.settleHost(h)
			h.Speed = prev[i]
			k.reshareHost(h)
		}
	})
}

// DegradeAllLinksAt scales every declared link's bandwidth by factor over
// [from, to) — the "bw:" clause of a fault spec. All links change together,
// so the whole flow set is settled once and re-solved once.
func (k *Kernel) DegradeAllLinksAt(factor, from, to float64) {
	if factor <= 0 {
		panic("simx: DegradeAllLinksAt with non-positive factor")
	}
	prev := make([]float64, len(k.linkList))
	k.At(from, func() {
		k.settleFlows(k.flows)
		for i, l := range k.linkList {
			prev[i] = l.Bandwidth
			l.Bandwidth = prev[i] * factor
		}
		k.reshareFlows(k.flows)
	})
	k.At(to, func() {
		k.settleFlows(k.flows)
		for i, l := range k.linkList {
			l.Bandwidth = prev[i]
		}
		k.reshareFlows(k.flows)
	})
}

// reshareLink re-solves the fair shares after l's capacity changed: the
// connected component of flows crossing l is settled (at the old rates) and
// re-shared, leaving every other component untouched — the same partial
// reshare a flow transition performs, minus the membership change.
func (k *Kernel) reshareLink(l *Link) {
	if len(l.flows) == 0 {
		return
	}
	if k.globalReshare {
		k.settleFlows(k.flows)
		k.reshareFlows(k.flows)
		return
	}
	k.epoch++
	e := k.epoch
	l.mark = e
	k.compStack = k.compStack[:0]
	for _, f := range l.flows {
		if f.mark != e {
			f.mark = e
			k.compStack = append(k.compStack, f)
		}
	}
	for n := len(k.compStack); n > 0; n = len(k.compStack) {
		f := k.compStack[n-1]
		k.compStack[n-1] = nil
		k.compStack = k.compStack[:n-1]
		for _, fl := range f.links {
			if fl.mark == e {
				continue
			}
			fl.mark = e
			for _, g := range fl.flows {
				if g.mark != e {
					g.mark = e
					k.compStack = append(k.compStack, g)
				}
			}
		}
	}
	k.comp = k.comp[:0]
	for _, f := range k.flows {
		if f.mark != e {
			continue
		}
		f.remaining -= f.rate * (k.now - f.lastUpdate)
		if f.remaining < 0 {
			f.remaining = 0
		}
		f.lastUpdate = k.now
		k.comp = append(k.comp, f)
	}
	k.reshareFlows(k.comp)
}
