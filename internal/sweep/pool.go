package sweep

import (
	"runtime"
	"sync"

	"tireplay/internal/fifo"
)

// Engine is a resident worker pool executing sweep tasks. A one-shot sweep
// creates and closes one per call (the package-level Run does exactly that),
// but the pool is designed to outlive a single sweep: a long-running service
// holds one Engine and streams every request's scenarios through it, so
// worker goroutines are started once per process rather than once per
// request, and concurrent sweeps share one global parallelism bound instead
// of multiplying their worker counts.
//
// Engine.Run is safe for concurrent use: each call owns all of its per-sweep
// state, and tasks from concurrent sweeps interleave FIFO on the shared
// queue. Close must only be called once every Run call has returned.
type Engine struct {
	workers int

	mu     sync.Mutex
	cond   *sync.Cond
	queue  fifo.Queue[func()]
	closed bool
	wg     sync.WaitGroup
}

// NewEngine starts a pool of the given width; workers <= 0 means
// runtime.GOMAXPROCS(0).
func NewEngine(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{workers: workers}
	e.cond = sync.NewCond(&e.mu)
	for i := 0; i < workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e
}

// Workers returns the pool width.
func (e *Engine) Workers() int { return e.workers }

func (e *Engine) worker() {
	defer e.wg.Done()
	for {
		e.mu.Lock()
		for e.queue.Empty() && !e.closed {
			e.cond.Wait()
		}
		if e.queue.Empty() {
			e.mu.Unlock()
			return
		}
		fn := e.queue.Pop()
		e.mu.Unlock()
		fn()
	}
}

// submit enqueues fn. The queue is unbounded, so a task already running on
// the pool — a fork donor fanning out its member tasks — can always enqueue
// without blocking a worker (a bounded queue here could deadlock the pool
// against itself).
func (e *Engine) submit(fn func()) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		panic("sweep: submit on closed Engine")
	}
	e.queue.Push(fn)
	e.cond.Signal()
	e.mu.Unlock()
}

// Close stops the pool: already-queued tasks still run, then the workers
// exit. It is idempotent and must not race an in-flight Run (cancel the
// Run's context and wait for it to return first).
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
	e.wg.Wait()
}
