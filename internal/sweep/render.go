package sweep

import (
	"encoding/json"
	"fmt"
	"io"

	"tireplay/internal/metrics"
	"tireplay/internal/units"
)

// WriteJSON renders the sweep result as indented JSON: one record per
// scenario in expansion order, with the makespan, action count, component
// count and (when collected) the per-process profile rows.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// metricsRow is one record of WriteMetricsJSON: the scenario's identity,
// makespan and metrics report, with everything nondeterministic (host wall
// time) excluded.
type metricsRow struct {
	Name          string          `json:"name"`
	SimulatedTime float64         `json:"simulated_time"`
	Err           string          `json:"err,omitempty"`
	Metrics       *metrics.Report `json:"metrics,omitempty"`
}

// WriteMetricsJSON renders only the deterministic metrics view of the
// sweep: scenario name, simulated time and the POP metrics report. Unlike
// WriteJSON it carries no wall-clock fields, so the same sweep serialises
// byte-identically at any worker count — the CI metrics-determinism gate
// diffs this output between workers=1 and workers=nproc.
func (r *Result) WriteMetricsJSON(w io.Writer) error {
	rows := make([]metricsRow, len(r.Scenarios))
	for i := range r.Scenarios {
		s := &r.Scenarios[i]
		rows[i] = metricsRow{Name: s.Name, SimulatedTime: s.SimulatedTime,
			Err: s.Err, Metrics: s.Metrics}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// RenderTable prints the per-scenario makespan table, with each scenario's
// speedup relative to the first (the conventional "current platform"
// baseline of a what-if study). When the first scenario failed or was
// cancelled there is no baseline, and the speedup column prints "-" rather
// than silently re-basing on some other scenario.
func (r *Result) RenderTable(w io.Writer) {
	// Resilience, prefix-reuse and metrics columns only appear when some
	// scenario carries them, so plain sweeps render unchanged.
	resilient, forked, metered := false, false, false
	for i := range r.Scenarios {
		if r.Scenarios[i].Resilience != nil {
			resilient = true
		}
		if r.Scenarios[i].Forked {
			forked = true
		}
		if r.Scenarios[i].Metrics != nil {
			metered = true
		}
	}
	fmt.Fprintf(w, "%-40s | %12s | %8s | %5s | %8s",
		"scenario", "predicted", "speedup", "parts", "actions")
	if metered {
		fmt.Fprintf(w, " | %6s %6s %6s %6s %6s",
			"parEff", "ldBal", "commE", "serE", "trfE")
	}
	if forked {
		fmt.Fprintf(w, " | %10s", "prefix")
	}
	if resilient {
		fmt.Fprintf(w, " | %12s | %10s | %10s | %5s",
			"fault-free", "wasted", "recomputed", "fails")
	}
	fmt.Fprintln(w)
	var baseline float64
	if len(r.Scenarios) > 0 && r.Scenarios[0].Err == "" {
		baseline = r.Scenarios[0].SimulatedTime
	}
	for i := range r.Scenarios {
		s := &r.Scenarios[i]
		if s.Err != "" {
			fmt.Fprintf(w, "%-40s | %s\n", s.Name, s.Err)
			continue
		}
		speedup := "-"
		if s.SimulatedTime > 0 && baseline > 0 {
			speedup = fmt.Sprintf("%7.2fx", baseline/s.SimulatedTime)
		}
		fmt.Fprintf(w, "%-40s | %12s | %8s | %5d | %8d",
			s.Name, units.FormatSeconds(s.SimulatedTime), speedup, s.Components, s.Actions)
		if metered {
			if m := s.Metrics; m != nil {
				e := m.Summary
				fmt.Fprintf(w, " | %6.3f %6.3f %6.3f %6.3f %6.3f",
					e.ParallelEff, e.LoadBalance, e.CommEff, e.SerEff, e.TransferEff)
			} else {
				fmt.Fprintf(w, " | %6s %6s %6s %6s %6s", "-", "-", "-", "-", "-")
			}
		}
		if forked {
			if s.Forked {
				fmt.Fprintf(w, " | %10d", s.PrefixActions)
			} else {
				fmt.Fprintf(w, " | %10s", "-")
			}
		}
		if resilient {
			if res := s.Resilience; res != nil {
				fmt.Fprintf(w, " | %12s | %10s | %10s | %5d",
					units.FormatSeconds(res.FaultFree), units.FormatSeconds(res.Wasted),
					units.FormatSeconds(res.Recomputed), res.Failures)
			} else {
				fmt.Fprintf(w, " | %12s | %10s | %10s | %5s", "-", "-", "-", "-")
			}
		}
		fmt.Fprintln(w)
	}
}
