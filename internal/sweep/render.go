package sweep

import (
	"encoding/json"
	"fmt"
	"io"

	"tireplay/internal/units"
)

// WriteJSON renders the sweep result as indented JSON: one record per
// scenario in expansion order, with the makespan, action count, component
// count and (when collected) the per-process profile rows.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// RenderTable prints the per-scenario makespan table, with each scenario's
// speedup relative to the first (the conventional "current platform"
// baseline of a what-if study). When the first scenario failed or was
// cancelled there is no baseline, and the speedup column prints "-" rather
// than silently re-basing on some other scenario.
func (r *Result) RenderTable(w io.Writer) {
	// Resilience and prefix-reuse columns only appear when some scenario
	// carries them, so plain sweeps render unchanged.
	resilient, forked := false, false
	for i := range r.Scenarios {
		if r.Scenarios[i].Resilience != nil {
			resilient = true
		}
		if r.Scenarios[i].Forked {
			forked = true
		}
	}
	fmt.Fprintf(w, "%-40s | %12s | %8s | %5s | %8s",
		"scenario", "predicted", "speedup", "parts", "actions")
	if forked {
		fmt.Fprintf(w, " | %10s", "prefix")
	}
	if resilient {
		fmt.Fprintf(w, " | %12s | %10s | %10s | %5s",
			"fault-free", "wasted", "recomputed", "fails")
	}
	fmt.Fprintln(w)
	var baseline float64
	if len(r.Scenarios) > 0 && r.Scenarios[0].Err == "" {
		baseline = r.Scenarios[0].SimulatedTime
	}
	for i := range r.Scenarios {
		s := &r.Scenarios[i]
		if s.Err != "" {
			fmt.Fprintf(w, "%-40s | %s\n", s.Name, s.Err)
			continue
		}
		speedup := "-"
		if s.SimulatedTime > 0 && baseline > 0 {
			speedup = fmt.Sprintf("%7.2fx", baseline/s.SimulatedTime)
		}
		fmt.Fprintf(w, "%-40s | %12s | %8s | %5d | %8d",
			s.Name, units.FormatSeconds(s.SimulatedTime), speedup, s.Components, s.Actions)
		if forked {
			if s.Forked {
				fmt.Fprintf(w, " | %10d", s.PrefixActions)
			} else {
				fmt.Fprintf(w, " | %10s", "-")
			}
		}
		if resilient {
			if res := s.Resilience; res != nil {
				fmt.Fprintf(w, " | %12s | %10s | %10s | %5d",
					units.FormatSeconds(res.FaultFree), units.FormatSeconds(res.Wasted),
					units.FormatSeconds(res.Recomputed), res.Failures)
			} else {
				fmt.Fprintf(w, " | %12s | %10s | %10s | %5s", "-", "-", "-", "-")
			}
		}
		fmt.Fprintln(w)
	}
}
