package sweep

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"tireplay/internal/metrics"
	"tireplay/internal/platform"
	"tireplay/internal/replay"
	"tireplay/internal/smpi"
	"tireplay/internal/synth"
)

// Config parameterises a sweep.
type Config struct {
	// Platform is the base platform description scenarios without a
	// topology derive from (required unless every grid cell sets a Topo).
	// It is only read; each scenario instantiates its own kernel from its
	// own scaled copy.
	Platform *platform.Platform
	// Grid spans the scenario space.
	Grid Grid
	// Traces is the shared trace set. It is only read. Required unless
	// every grid cell is synthetic (Grid.World all positive with Synth
	// set), in which case it may be nil.
	Traces *TraceSet
	// Synth is the fitted statistical model (see internal/synth) that
	// synthetic cells — grid cells with a positive World — regenerate
	// their rank streams from, on the fly, without trace files. Required
	// when Grid.World has positive entries; ignored otherwise.
	Synth *synth.Model
	// SynthSpec templates the synthetic generation: its scaling law, seed,
	// jitter and explicit grid apply to every synthetic cell, while its
	// World field is overridden by each cell's world value.
	SynthSpec synth.Spec
	// Model is the MPI communication model; nil means smpi.Default().
	Model *smpi.Model
	// Registry binds action keywords to handlers for every scenario replay;
	// nil means replay.Default(). It is shared read-only between workers.
	Registry *replay.Registry
	// EagerThreshold is forwarded to every replay (see replay.Config).
	EagerThreshold float64
	// Workers bounds the pool replaying scenarios concurrently; <= 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// Timed collects each scenario's timed trace (the secondary output of
	// Figure 4) into its result. Traces are byte-identical whatever the
	// worker count.
	Timed bool
	// Profile collects a per-process profile for each scenario.
	Profile bool
	// Metrics computes each scenario's time-resolved POP metrics report
	// (load balance, communication efficiency, serialization/transfer
	// split; see internal/metrics) from a columnar event sink attached to
	// the replay. The report is a pure function of the scenario, so it is
	// byte-identical whatever the worker count.
	Metrics bool
	// MetricsWindows is the number of fixed time windows for Metrics;
	// <= 0 means the metrics package default (10).
	MetricsWindows int
	// Partition splits a scenario across several kernels when the platform
	// graph decomposes into disjoint connected components and the trace's
	// communication respects the induced rank partition.
	Partition bool
	// Fork enables shared-prefix forking: scenarios differing only in their
	// collective algorithm or checkpoint policy replay their common trace
	// prefix once on a donor kernel and fork from its snapshot (see fork.go).
	// Results are provably identical either way — members that cannot be
	// proven equivalent fall back to a from-scratch replay.
	Fork bool
	// OnResult, when non-nil, receives each scenario's result as it
	// completes, from whichever worker finished it last; it must be safe
	// for concurrent use. Results in the final Result stay in scenario
	// order regardless.
	OnResult func(*ScenarioResult)
}

// ScenarioResult is the outcome of one scenario.
type ScenarioResult struct {
	Scenario
	// Name is the scenario's compact label.
	Name string `json:"name"`
	// SimulatedTime is the predicted makespan on the scenario platform.
	SimulatedTime float64 `json:"simulated_time"`
	// Actions is the number of trace actions replayed.
	Actions int64 `json:"actions"`
	// Wall is the host CPU time the scenario's kernels consumed (summed
	// over components, so it is comparable across worker counts).
	Wall time.Duration `json:"wall_ns"`
	// Components is how many independent kernels executed the scenario.
	Components int `json:"components"`
	// TimedTrace is the scenario's timed trace when Config.Timed is set,
	// concatenated over components in deterministic component order.
	TimedTrace []byte `json:"-"`
	// Profile holds the per-process profile rows when Config.Profile is
	// set, sorted by process name.
	Profile []*replay.ProcProfile `json:"profile,omitempty"`
	// Metrics is the scenario's time-resolved POP metrics report when
	// Config.Metrics is set.
	Metrics *metrics.Report `json:"metrics,omitempty"`
	// Resilience is the checkpoint/restart waste accounting of the
	// scenario; non-nil exactly when the scenario sets a Ckpt protocol.
	Resilience *replay.Resilience `json:"resilience,omitempty"`
	// Forked reports that the scenario replayed from a shared prefix fork
	// instead of from scratch (Config.Fork).
	Forked bool `json:"forked,omitempty"`
	// PrefixActions is the number of trace actions inherited from the fork
	// group's shared prefix, counted inside Actions; zero when not forked.
	PrefixActions int64 `json:"prefix_actions,omitempty"`
	// Err reports a failed or cancelled scenario; the zero value means
	// success.
	Err string `json:"err,omitempty"`
}

// Result is the aggregated outcome of a sweep, scenarios in expansion order.
type Result struct {
	Workers   int              `json:"workers"`
	Wall      time.Duration    `json:"wall_ns"`
	Scenarios []ScenarioResult `json:"scenarios"`
}

// taskKind distinguishes the pool's work items.
type taskKind uint8

const (
	// taskNormal replays one scenario component from scratch.
	taskNormal taskKind = iota
	// taskDonor replays a fork group's shared prefix, then enqueues the
	// group's member tasks.
	taskDonor
	// taskMember replays one scenario forked from its group's prefix.
	taskMember
)

// task is one pool work item.
type task struct {
	kind taskKind
	si   int        // scenario index (-1 for donors)
	pi   int        // part index within the scenario
	part part       // global ranks of this component
	grp  *forkGroup // fork group of donor and member tasks
}

// partOut is the raw outcome of one task.
type partOut struct {
	res        *replay.Result
	timed      []byte
	profile    *replay.Profile
	sink       *replay.MetricsSink
	components int
	forked     bool
	prefix     int64
	err        error
}

// taskTracers bundles the per-task tracer set runTask and runMember share:
// a timed-trace writer, a legacy profile, and the columnar metrics sink,
// teed per Config. The sink pre-interns the deployment's process names so
// ranks that record no event still get a (fully idle) row in the analysis.
type taskTracers struct {
	tee replay.Tee
	buf bytes.Buffer
	tw  *replay.TimedTraceWriter
}

func newTaskTracers(cfg *Config, out *partOut, procs []platform.ProcessDef) *taskTracers {
	t := &taskTracers{}
	if cfg.Timed {
		t.tw = replay.NewTimedTraceWriter(&t.buf)
		t.tee = append(t.tee, t.tw)
	}
	if cfg.Profile {
		out.profile = replay.NewProfile()
		t.tee = append(t.tee, out.profile)
	}
	if cfg.Metrics {
		out.sink = replay.NewMetricsSink()
		for _, p := range procs {
			out.sink.RankID(p.Function)
		}
		t.tee = append(t.tee, out.sink)
	}
	return t
}

// finish flushes the timed trace into the outcome; a write error that
// slipped by mid-replay (sticky in the writer) fails the part rather than
// passing off a truncated trace.
func (t *taskTracers) finish(out *partOut) {
	if t.tw == nil {
		return
	}
	if err := t.tw.Flush(); err != nil && out.err == nil {
		out.err = fmt.Errorf("sweep: timed trace: %w", err)
	}
	out.timed = t.buf.Bytes()
}

// Run executes the sweep on a pool created for this one call: it expands
// the grid, schedules every scenario component on the worker pool and merges
// the results deterministically. Cancelling the context stops scheduling new
// work; already-running scenarios finish (a kernel run is not
// interruptible), unstarted ones are reported with Err "sweep: canceled",
// and Run returns the partial result together with the context's error.
// Services that execute many sweeps should hold one Engine and call its Run
// instead, reusing the worker goroutines across requests.
func Run(ctx context.Context, cfg *Config) (*Result, error) {
	e := NewEngine(cfg.Workers)
	defer e.Close()
	return e.Run(ctx, cfg)
}

// Run executes one sweep on the engine's resident pool. The semantics are
// those of the package-level Run; concurrent calls share the pool's workers.
func (e *Engine) Run(ctx context.Context, cfg *Config) (*Result, error) {
	model := cfg.Model
	if model == nil {
		model = smpi.Default()
	}

	scenarios := cfg.Grid.Expand()
	needBase, hasRecorded, hasSynth := false, false, false
	for i := range scenarios {
		if scenarios[i].Topo == nil {
			needBase = true
		}
		if scenarios[i].World > 0 {
			hasSynth = true
		} else {
			hasRecorded = true
		}
	}
	if hasRecorded && (cfg.Traces == nil || cfg.Traces.Ranks() == 0) {
		return nil, fmt.Errorf("sweep: empty trace set")
	}
	if hasSynth && cfg.Synth == nil {
		return nil, fmt.Errorf("sweep: grid has synthetic worlds but no fitted model (Config.Synth)")
	}
	// One generator per distinct synthetic world, shared read-only by every
	// scenario at that size (per-rank cursors are created per replay, so
	// workers never share mutable generation state).
	if hasSynth {
		gens := make(map[int]*synth.Gen)
		for i := range scenarios {
			sc := &scenarios[i]
			if sc.World <= 0 {
				continue
			}
			g, ok := gens[sc.World]
			if !ok {
				spec := cfg.SynthSpec
				spec.World = sc.World
				var err error
				if g, err = synth.NewGen(cfg.Synth, spec); err != nil {
					return nil, fmt.Errorf("sweep: world %d: %w", sc.World, err)
				}
				gens[sc.World] = g
			}
			sc.synthGen = g
		}
	}

	var hosts []string
	var err error
	if needBase {
		if cfg.Platform == nil {
			return nil, fmt.Errorf("sweep: nil platform")
		}
		if hosts, err = cfg.Platform.Hosts(); err != nil {
			return nil, err
		}
		if len(hosts) == 0 {
			return nil, fmt.Errorf("sweep: platform declares no hosts")
		}
	}

	// The shared read-only inputs of every task: the communication graph of
	// the traces and the host components of the base platform (scaling
	// never changes connectivity, so one analysis serves every scenario).
	// Generated topologies are always a single connected component, so
	// their scenarios replay whole regardless of Partition.
	var graph *commGraph
	hostComp := make(map[string]int)
	if cfg.Partition && needBase && hasRecorded {
		if graph, err = analyze(cfg.Traces); err != nil {
			return nil, err
		}
		comps, err := cfg.Platform.Components()
		if err != nil {
			return nil, err
		}
		for ci, comp := range comps {
			for _, h := range comp {
				hostComp[h] = ci
			}
		}
	}

	depls := make([]*platform.Deployment, len(scenarios))
	partsBy := make([][]part, len(scenarios))
	multiPart := make([]bool, len(scenarios))
	for si, sc := range scenarios {
		// Synthetic cells size their own world; recorded cells replay
		// every rank of the trace set.
		n := sc.World
		if n <= 0 {
			n = cfg.Traces.Ranks()
		}
		scHosts := hosts
		if sc.Topo != nil {
			scHosts = sc.Topo.HostNames()
		}
		d, err := scenarioDeployment(scHosts, sc, n)
		if err != nil {
			return nil, fmt.Errorf("sweep: scenario %d (%s): %w", si, sc.Name(), err)
		}
		depls[si] = d
		parts := []part{wholePart(n)}
		// A faulted or checkpointed scenario always replays whole: fault
		// host indices address the full deployment and the waste algebra
		// applies to the global makespan, neither of which survives a
		// split across kernels. Synthetic cells replay whole too — the
		// communication-graph analysis only covers the recorded traces.
		if cfg.Partition && sc.Topo == nil && sc.Fault == nil && sc.Ckpt == nil && sc.World == 0 {
			parts = partition(graph, hostComp, d.Processes)
		}
		partsBy[si] = parts
		multiPart[si] = len(parts) > 1
	}

	// Fork planning: scenarios sharing a prefix become member tasks of a
	// donor instead of normal tasks (see fork.go).
	groups, memberOf, err := planForkGroups(cfg, scenarios, multiPart)
	if err != nil {
		return nil, err
	}

	// Donors are enqueued first so shared prefixes start as early as
	// possible; member tasks are enqueued by their donor's worker as soon as
	// the prefix is captured, so the pool never blocks waiting for one.
	initial := make([]task, 0, len(groups)+len(scenarios))
	total := 0
	for _, g := range groups {
		initial = append(initial, task{kind: taskDonor, si: -1, grp: g})
		total += len(g.members)
	}
	for si := range scenarios {
		if memberOf[si] != nil {
			continue // scheduled by its donor
		}
		for pi, p := range partsBy[si] {
			initial = append(initial, task{kind: taskNormal, si: si, pi: pi, part: p})
		}
	}
	total += len(initial)

	// outs[si][pi] is written by exactly one worker; remaining[si] counts
	// parts still running so the last worker can emit the merged result.
	outs := make([][]partOut, len(scenarios))
	remaining := make([]atomic.Int32, len(scenarios))
	results := make([]ScenarioResult, len(scenarios))
	for si := range scenarios {
		outs[si] = make([]partOut, len(partsBy[si]))
		remaining[si].Add(int32(len(partsBy[si])))
	}
	for si := range results {
		results[si] = ScenarioResult{Scenario: scenarios[si], Name: scenarios[si].Name(),
			Err: "sweep: canceled"}
	}

	start := time.Now()
	// Every task that will ever exist — including the member tasks a donor
	// fans out after capturing its prefix — is pre-counted in total, so the
	// sweep is over exactly when the outstanding counter reaches zero. A
	// cancelled context skips the replays but still drains every task, so
	// the count always reaches zero and the canceled rows keep their marker.
	done := make(chan struct{})
	var outstanding atomic.Int64
	outstanding.Store(int64(total))
	finish := func() {
		if outstanding.Add(-1) == 0 {
			close(done)
		}
	}
	var exec func(t task)
	exec = func(t task) {
		switch t.kind {
		case taskDonor:
			t.grp.runDonor(ctx, cfg, model, scenarios[t.grp.members[0]], depls[t.grp.members[0]])
			for _, si := range t.grp.members {
				mt := task{kind: taskMember, si: si, pi: 0, part: partsBy[si][0], grp: t.grp}
				e.submit(func() { exec(mt); finish() })
			}
		default:
			if ctx.Err() == nil {
				var out partOut
				if t.kind == taskMember {
					out = safeRunMember(cfg, model, scenarios[t.si], depls[t.si], t.part, t.grp)
				} else {
					out = safeRunTask(cfg, model, scenarios[t.si], depls[t.si], t.part)
				}
				outs[t.si][t.pi] = out
				if remaining[t.si].Add(-1) == 0 {
					results[t.si] = mergeScenario(cfg, scenarios[t.si], outs[t.si])
					if cfg.OnResult != nil {
						cfg.OnResult(&results[t.si])
					}
				}
			}
		}
	}
	for _, t := range initial {
		t := t
		e.submit(func() { exec(t); finish() })
	}
	<-done

	res := &Result{Workers: e.workers, Wall: time.Since(start), Scenarios: results}
	return res, ctx.Err()
}

func wholePart(n int) part {
	ranks := make([]int, n)
	for i := range ranks {
		ranks[i] = i
	}
	return part{ranks: ranks}
}

// scenarioDeployment folds the n ranks onto the scenario's host subset.
func scenarioDeployment(hosts []string, sc Scenario, n int) (*platform.Deployment, error) {
	use := hosts
	if sc.Hosts > 0 && sc.Hosts < len(hosts) {
		use = hosts[:sc.Hosts]
	}
	fold := sc.Fold
	if fold < 1 {
		fold = 1
	}
	return platform.RoundRobin(use, n, fold)
}

// safeRunTask shields the worker pool from a crashing scenario: a panic
// anywhere in one component's replay — a custom handler bug, a pathological
// trace, a kernel invariant violation — becomes that scenario's error
// instead of taking down the whole sweep, so sibling scenarios complete and
// their results are still flushed.
func safeRunTask(cfg *Config, model *smpi.Model, sc Scenario, depl *platform.Deployment, p part) (out partOut) {
	defer func() {
		if r := recover(); r != nil {
			out = partOut{err: fmt.Errorf("sweep: scenario %d (%s) panicked: %v",
				sc.Index, sc.Name(), r)}
		}
	}()
	return runTask(cfg, model, sc, depl, p)
}

// runTask replays one scenario component on its own kernel. Every mutable
// structure — the scaled description, the instantiated kernel with its
// pools and interning tables, the sources, the tracers — is created here
// and owned by this task alone.
func runTask(cfg *Config, model *smpi.Model, sc Scenario, depl *platform.Deployment, p part) partOut {
	b, err := scenarioBuild(cfg, sc)
	if err != nil {
		return partOut{err: err}
	}

	n := len(depl.Processes)
	sub := depl
	rcfg := replay.Config{Model: model, Registry: cfg.Registry,
		EagerThreshold: cfg.EagerThreshold, WorldSize: n,
		Collectives: sc.Coll, Faults: sc.Fault, Ckpt: sc.Ckpt}
	if len(p.ranks) != n {
		sub = &platform.Deployment{Version: depl.Version}
		for _, r := range p.ranks {
			sub.Processes = append(sub.Processes, depl.Processes[r])
		}
		rcfg.Ranks = p.ranks
	}
	sources := make([]replay.Source, len(p.ranks))
	for i, r := range p.ranks {
		if sources[i], err = scenarioSource(cfg, &sc, r); err != nil {
			return partOut{err: err}
		}
	}

	var out partOut
	tr := newTaskTracers(cfg, &out, sub.Processes)
	if len(tr.tee) > 0 {
		rcfg.TimedTracer = tr.tee
	}

	out.res, out.err = replay.Run(b, sub, rcfg, sources)
	tr.finish(&out)
	out.components = 1
	return out
}

// scenarioSource returns a fresh action source for rank r of the scenario:
// a cursor over the shared recorded trace set, or — for synthetic cells — a
// streaming generator cursor that synthesises the rank's actions on the
// fly, so a 16k-rank world costs one small cursor per rank, not trace
// files.
func scenarioSource(cfg *Config, sc *Scenario, r int) (replay.Source, error) {
	if sc.synthGen != nil {
		return sc.synthGen.Rank(r)
	}
	return cfg.Traces.source(r)
}

// mergeScenario folds a scenario's component outcomes into its result:
// makespan is the maximum over components (they run concurrently in
// simulated time), actions and host CPU time are summed, timed traces are
// concatenated in component order — all independent of which worker ran
// what, so the merged result is deterministic.
func mergeScenario(cfg *Config, sc Scenario, parts []partOut) ScenarioResult {
	out := ScenarioResult{Scenario: sc, Name: sc.Name()}
	var timed []byte
	var sinks []*replay.MetricsSink
	for _, p := range parts {
		if p.err != nil {
			out.Err = p.err.Error()
			return out
		}
		if p.res.SimulatedTime > out.SimulatedTime {
			out.SimulatedTime = p.res.SimulatedTime
		}
		if p.res.Resilience != nil {
			// Checkpointed scenarios always replay whole (one part), so
			// this assigns at most once.
			out.Resilience = p.res.Resilience
		}
		out.Actions += p.res.Actions
		out.Wall += p.res.WallTime
		out.Components += p.components
		if p.forked {
			out.Forked = true
			out.PrefixActions += p.prefix
		}
		if cfg.Timed {
			timed = append(timed, p.timed...)
		}
		if cfg.Profile && p.profile != nil {
			out.Profile = append(out.Profile, p.profile.Processes()...)
		}
		if cfg.Metrics && p.sink != nil {
			sinks = append(sinks, p.sink)
		}
	}
	out.TimedTrace = timed
	if cfg.Profile {
		sort.Slice(out.Profile, func(i, j int) bool { return out.Profile[i].Name < out.Profile[j].Name })
	}
	if cfg.Metrics {
		// Sinks are folded in deterministic part order and the analysis is
		// a pure function of its input, so the report — including its JSON
		// encoding — is identical whatever the worker count. Checkpointed
		// scenarios report a waste-inflated makespan (Effective time), so
		// their analysis horizon derives from the events instead.
		opt := metrics.Options{Windows: cfg.MetricsWindows}
		if out.Resilience == nil {
			opt.Makespan = out.SimulatedTime
		}
		out.Metrics = metrics.Analyze(sinks, opt)
	}
	return out
}
