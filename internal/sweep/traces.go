package sweep

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"tireplay/internal/replay"
	"tireplay/internal/trace"
)

// TraceSet is the one shared input of a sweep: the per-rank time-independent
// traces, parsed (or memory-mapped) exactly once and handed to every
// scenario read-only. Per-scenario cursors are created by source(), so
// concurrent workers never share a decoder position; binary traces stay
// mapped and are decoded in place by each scenario's own cursor, directly
// out of the shared page cache.
type TraceSet struct {
	perRank [][]trace.Action     // slice-backed ranks (nil entry: mapped)
	mapped  []*trace.MappedTrace // mapped binary ranks (nil entry: slice)
}

// TracesFromActions wraps already-parsed per-rank action lists. The slices
// are retained and must not be mutated while a sweep runs.
func TracesFromActions(perRank [][]trace.Action) *TraceSet {
	return &TraceSet{perRank: perRank, mapped: make([]*trace.MappedTrace, len(perRank))}
}

// LoadDir loads the n per-rank trace files of dir, resolving each rank's
// file among the three encodings tau2ti emits (SG_process<r>.trace, .trace.gz,
// .tib). Text and gzip traces are parsed into memory once; binary traces are
// memory-mapped and never copied. Close the set when the sweep is done.
func LoadDir(dir string, n int) (*TraceSet, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sweep: need a positive rank count")
	}
	ts := &TraceSet{
		perRank: make([][]trace.Action, n),
		mapped:  make([]*trace.MappedTrace, n),
	}
	for r := 0; r < n; r++ {
		path, err := resolveTraceFile(dir, r)
		if err != nil {
			ts.Close()
			return nil, err
		}
		if strings.HasSuffix(path, ".tib") {
			m, err := trace.OpenMapped(path)
			if err != nil {
				ts.Close()
				return nil, err
			}
			if _, err := m.Cursor(); err != nil {
				m.Close()
				ts.Close()
				return nil, fmt.Errorf("sweep: %s: %w", path, err)
			}
			ts.mapped[r] = m
			continue
		}
		acts, err := trace.ReadFile(path)
		if err != nil {
			ts.Close()
			return nil, err
		}
		ts.perRank[r] = acts
	}
	return ts, nil
}

// resolveTraceFile locates rank r's trace file under dir.
func resolveTraceFile(dir string, r int) (string, error) {
	names := []string{trace.ProcessFileName(r), trace.GzipFileName(r), trace.BinaryFileName(r)}
	for _, name := range names {
		p := filepath.Join(dir, name)
		if _, err := os.Stat(p); err == nil {
			return p, nil
		}
	}
	return "", fmt.Errorf("sweep: no trace for rank %d under %s (tried %s)",
		r, dir, strings.Join(names, ", "))
}

// Ranks returns the number of ranks in the set.
func (t *TraceSet) Ranks() int { return len(t.perRank) }

// Close releases the mapped views. Safe on a partially loaded set.
func (t *TraceSet) Close() error {
	var first error
	for i, m := range t.mapped {
		if m == nil {
			continue
		}
		if err := m.Close(); err != nil && first == nil {
			first = err
		}
		t.mapped[i] = nil
	}
	return first
}

// source returns a fresh Source over rank r's trace for one scenario run.
func (t *TraceSet) source(r int) (replay.Source, error) {
	if m := t.mapped[r]; m != nil {
		cur, err := m.Cursor()
		if err != nil {
			return nil, err
		}
		return cur, nil
	}
	return replay.SliceSource(t.perRank[r]), nil
}

// visit streams rank r's actions through fn, stopping early when fn returns
// false; the communication-graph analysis of partition.go uses it without
// materialising mapped traces.
func (t *TraceSet) visit(r int, fn func(trace.Action) bool) error {
	src, err := t.source(r)
	if err != nil {
		return err
	}
	for {
		a, ok, err := src.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if !fn(a) {
			return nil
		}
	}
}
