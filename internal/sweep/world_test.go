package sweep

import (
	"bytes"
	"context"
	"runtime"
	"strings"
	"testing"

	"tireplay/internal/coll"
	"tireplay/internal/npb"
	"tireplay/internal/platform"
	"tireplay/internal/synth"
)

// luModel fits the synthetic model of one recorded LU run.
func luModel(t testing.TB, class npb.Class, procs int) *synth.Model {
	t.Helper()
	perRank, err := npb.RecordAll("lu", class.Name, procs)
	if err != nil {
		t.Fatal(err)
	}
	m, err := synth.Fit(perRank)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestWorldAxisExpansion(t *testing.T) {
	g := Grid{World: []int{0, 32}, BandwidthScale: []float64{1, 2}}
	scs := g.Expand()
	if len(scs) != 4 || len(scs) != g.Size() {
		t.Fatalf("expanded %d scenarios, Size()=%d, want 4", len(scs), g.Size())
	}
	// World is the outermost axis: recorded cells first.
	if scs[0].World != 0 || scs[1].World != 0 || scs[2].World != 32 || scs[3].World != 32 {
		t.Fatalf("unexpected world order: %d %d %d %d",
			scs[0].World, scs[1].World, scs[2].World, scs[3].World)
	}
	if name := scs[2].Name(); !strings.Contains(name, "world=32") {
		t.Fatalf("synthetic scenario name %q lacks world=32", name)
	}
	if name := scs[0].Name(); strings.Contains(name, "world=") {
		t.Fatalf("recorded scenario name %q must not carry a world suffix", name)
	}
}

func TestParseWorldList(t *testing.T) {
	ws, err := ParseWorldList(" 0, 1024,16384 ")
	if err != nil || len(ws) != 3 || ws[0] != 0 || ws[2] != 16384 {
		t.Fatalf("ParseWorldList = %v, %v", ws, err)
	}
	if _, err := ParseWorldList("1024,-1"); err == nil {
		t.Fatal("negative world must fail")
	}
	if ws, err := ParseWorldList(""); err != nil || ws != nil {
		t.Fatalf("empty world list = %v, %v", ws, err)
	}
}

// TestSweepWorldAxis replays an all-synthetic grid — no trace set at all —
// and checks every cell completed on its own world size.
func TestSweepWorldAxis(t *testing.T) {
	m := luModel(t, npb.ClassS, 16)
	worlds := []int{12, 24}
	res, err := Run(context.Background(), &Config{
		Platform:  platform.BordereauWithCores(24, 1),
		Grid:      Grid{World: worlds, BandwidthScale: []float64{0.5, 1}},
		Synth:     m,
		SynthSpec: synth.Spec{Law: synth.StrongLaw},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenarios) != 4 {
		t.Fatalf("got %d scenarios, want 4", len(res.Scenarios))
	}
	actionsBy := map[int]int64{}
	for _, sc := range res.Scenarios {
		if sc.Err != "" {
			t.Fatalf("scenario %q failed: %s", sc.Name, sc.Err)
		}
		if sc.SimulatedTime <= 0 || sc.Actions == 0 {
			t.Fatalf("scenario %q: time %g, actions %d", sc.Name, sc.SimulatedTime, sc.Actions)
		}
		if prev, seen := actionsBy[sc.World]; seen && prev != sc.Actions {
			t.Fatalf("world %d replayed %d then %d actions", sc.World, prev, sc.Actions)
		}
		actionsBy[sc.World] = sc.Actions
	}
	if actionsBy[12] >= actionsBy[24] {
		t.Fatalf("larger world must replay more actions: %d@12 vs %d@24",
			actionsBy[12], actionsBy[24])
	}
}

// TestSweepWorldMixed mixes the recorded world (entry 0) with a synthetic
// one in a single grid: the recorded cell must replay exactly the recorded
// trace set's actions.
func TestSweepWorldMixed(t *testing.T) {
	const procs = 8
	ts := luTraces(t, npb.ClassS, procs)
	m := luModel(t, npb.ClassS, procs)
	res, err := Run(context.Background(), &Config{
		Platform: platform.BordereauWithCores(procs, 1),
		Grid:     Grid{World: []int{0, procs}},
		Traces:   ts,
		Synth:    m,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenarios) != 2 {
		t.Fatalf("got %d scenarios, want 2", len(res.Scenarios))
	}
	rec, syn := res.Scenarios[0], res.Scenarios[1]
	if rec.Err != "" || syn.Err != "" {
		t.Fatalf("errs: %q, %q", rec.Err, syn.Err)
	}
	// The fitted model regenerated at the recorded size is exact (the
	// differential contract of internal/synth), so both cells replay the
	// same action count and predict the same makespan.
	if rec.Actions != syn.Actions {
		t.Fatalf("recorded cell replayed %d actions, synthetic twin %d", rec.Actions, syn.Actions)
	}
	if rec.SimulatedTime != syn.SimulatedTime {
		t.Fatalf("recorded makespan %g != synthetic twin %g", rec.SimulatedTime, syn.SimulatedTime)
	}
}

// TestSweepWorldDeterministicAcrossWorkers extends the engine's byte-identity
// guarantee to synthetic cells: the same -world grid produces byte-identical
// timed traces at one worker and at NumCPU workers. The race job replays this
// under -race, which doubles as the shared-generator data-race check.
func TestSweepWorldDeterministicAcrossWorkers(t *testing.T) {
	m := luModel(t, npb.ClassS, 16)
	grid := Grid{World: []int{8, 12}, PowerScale: []float64{1, 2}}
	run := func(workers int) *Result {
		res, err := Run(context.Background(), &Config{
			Platform:  platform.BordereauWithCores(12, 1),
			Grid:      grid,
			Synth:     m,
			SynthSpec: synth.Spec{Seed: 7, Jitter: 0.05},
			Workers:   workers,
			Timed:     true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	workers := runtime.NumCPU()
	if workers < 4 {
		workers = 4
	}
	parallel := run(workers)
	for i := range serial.Scenarios {
		s, p := &serial.Scenarios[i], &parallel.Scenarios[i]
		if s.Err != "" || p.Err != "" {
			t.Fatalf("scenario %d errs: %q, %q", i, s.Err, p.Err)
		}
		if s.SimulatedTime != p.SimulatedTime {
			t.Fatalf("scenario %q: %g serial vs %g parallel", s.Name, s.SimulatedTime, p.SimulatedTime)
		}
		if !bytes.Equal(s.TimedTrace, p.TimedTrace) {
			t.Fatalf("scenario %q: timed traces differ across worker counts", s.Name)
		}
	}
}

func TestSweepWorldErrors(t *testing.T) {
	// A synthetic world without a fitted model is a configuration error.
	_, err := Run(context.Background(), &Config{
		Platform: platform.BordereauWithCores(8, 1),
		Grid:     Grid{World: []int{8}},
	})
	if err == nil || !strings.Contains(err.Error(), "fitted model") {
		t.Fatalf("world without Synth: %v", err)
	}
	// A recorded cell without traces still fails like before.
	_, err = Run(context.Background(), &Config{
		Platform: platform.BordereauWithCores(8, 1),
		Grid:     Grid{},
	})
	if err == nil || !strings.Contains(err.Error(), "empty trace set") {
		t.Fatalf("recorded grid without traces: %v", err)
	}
	// A bad synthetic spec (grid not tiling a world) surfaces as a sweep
	// error naming the world.
	m := luModel(t, npb.ClassS, 16)
	_, err = Run(context.Background(), &Config{
		Platform:  platform.BordereauWithCores(8, 1),
		Grid:      Grid{World: []int{7}},
		Synth:     m,
		SynthSpec: synth.Spec{GridW: 4, GridH: 4},
	})
	if err == nil || !strings.Contains(err.Error(), "world 7") {
		t.Fatalf("bad grid spec: %v", err)
	}
}

// TestSweepWorldForkExcluded pins that synthetic cells never join a fork
// group even when a collective axis would otherwise make them forkable.
func TestSweepWorldForkExcluded(t *testing.T) {
	const procs = 8
	ts := luTraces(t, npb.ClassS, procs)
	m := luModel(t, npb.ClassS, procs)
	res, err := Run(context.Background(), &Config{
		Platform: platform.BordereauWithCores(procs, 1),
		Grid:     Grid{World: []int{0, procs}, Coll: mustCollList(t, "linear;binomial")},
		Traces:   ts,
		Synth:    m,
		Fork:     true,
		Timed:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range res.Scenarios {
		if sc.Err != "" {
			t.Fatalf("scenario %q failed: %s", sc.Name, sc.Err)
		}
		if sc.World > 0 && sc.Forked {
			t.Fatalf("synthetic scenario %q must not fork from the recorded prefix", sc.Name)
		}
	}
}

func mustCollList(t *testing.T, s string) []coll.Config {
	t.Helper()
	cs, err := ParseCollList(s)
	if err != nil {
		t.Fatal(err)
	}
	return cs
}
