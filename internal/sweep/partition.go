package sweep

import (
	"tireplay/internal/platform"
	"tireplay/internal/trace"
)

// Scenario partitioning: when the platform graph decomposes into disjoint
// connected components (e.g. two clusters with no wide-area route) and the
// trace's communication graph never crosses the induced rank partition, the
// scenario's replay decomposes exactly — ranks of different components share
// no link, no mailbox and no collective, so each component can run on its
// own kernel, in parallel, with bit-identical per-rank results. The sweep
// engine then schedules component runs as independent pool tasks and merges
// them deterministically (makespan = max over components, timed traces
// concatenated in component order).

// commGraph is the rank-level communication structure of a trace set,
// computed once per sweep and shared read-only by every scenario.
type commGraph struct {
	// peers[r] lists the distinct ranks r exchanges point-to-point traffic
	// with (send/Isend/recv/Irecv), in first-contact order.
	peers [][]int
	// collective reports whether any rank executes a collective action;
	// collectives synchronise the full communicator through rank 0, so a
	// collective trace never splits.
	collective bool
}

// analyze scans every rank's trace once. The scan stops early once a
// collective is seen, as the graph cannot split anyway.
func analyze(ts *TraceSet) (*commGraph, error) {
	n := ts.Ranks()
	g := &commGraph{peers: make([][]int, n)}
	for r := 0; r < n && !g.collective; r++ {
		seen := make(map[int]bool)
		err := ts.visit(r, func(a trace.Action) bool {
			switch a.Type {
			case trace.Send, trace.Isend, trace.Recv, trace.Irecv:
				if a.Peer >= 0 && a.Peer != r && !seen[a.Peer] {
					seen[a.Peer] = true
					g.peers[r] = append(g.peers[r], a.Peer)
				}
			case trace.Bcast, trace.Reduce, trace.AllReduce, trace.Barrier,
				trace.Gather, trace.AllGather, trace.AllToAll, trace.Scatter:
				g.collective = true
				return false
			}
			return true
		})
		if err != nil {
			return nil, err
		}
	}
	return g, nil
}

// part is one component task of a scenario: the subset of global ranks to
// replay on a kernel of their own. Ranks are in ascending order, so the
// deployment slice and the result merge are deterministic.
type part struct {
	ranks []int
}

// partition derives the component tasks of one scenario. hostComp maps a
// host name to its platform component id; procs is the scenario deployment.
// It returns one part per platform component actually used — or a single
// part with every rank when the trace's communication graph crosses the
// partition (or uses collectives), in which case the scenario must run on
// one kernel.
func partition(g *commGraph, hostComp map[string]int, procs []platform.ProcessDef) []part {
	n := len(procs)
	all := func() []part {
		ranks := make([]int, n)
		for i := range ranks {
			ranks[i] = i
		}
		return []part{{ranks: ranks}}
	}
	comp := make([]int, n)
	used := make(map[int]bool)
	for i, pd := range procs {
		c, ok := hostComp[pd.Host]
		if !ok {
			// Host outside the description (programmatic platform): no
			// partition information, run whole.
			return all()
		}
		comp[i] = c
		used[c] = true
	}
	if len(used) <= 1 {
		return all()
	}
	if g.collective {
		return all()
	}
	for r := 0; r < n; r++ {
		for _, p := range g.peers[r] {
			if p >= n || comp[p] != comp[r] {
				// A message would cross components (or names a rank outside
				// the deployment — leave that to the replay's own checks).
				return all()
			}
		}
	}
	// Group ranks by component, ordered by first-rank appearance.
	order := make(map[int]int)
	var parts []part
	for r := 0; r < n; r++ {
		c := comp[r]
		i, ok := order[c]
		if !ok {
			i = len(parts)
			order[c] = i
			parts = append(parts, part{})
		}
		parts[i].ranks = append(parts[i].ranks, r)
	}
	return parts
}
