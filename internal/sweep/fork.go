package sweep

import (
	"context"
	"errors"
	"fmt"
	"time"

	"tireplay/internal/platform"
	"tireplay/internal/replay"
	"tireplay/internal/smpi"
	"tireplay/internal/trace"
)

// This file plans and executes shared-prefix forking (see internal/replay's
// fork.go for the underlying machinery): scenarios that agree on the
// platform, the deployment and the fault stream — differing only in their
// collective algorithm or checkpoint policy — replay their common trace
// prefix once on a donor kernel, then fork from its snapshot. Forking is an
// optimisation with a proof obligation: every forked member is byte-identical
// (timed traces) and bit-equal (makespans) to a from-scratch replay, and any
// member that cannot be proven equivalent silently falls back to one.

// groupKey identifies a fork group: the axes that shape the platform, the
// deployment folding and the fault stream. Scenarios sharing a key replay an
// identical action prefix up to their first collective-dependent action (or
// the whole trace, when only the analytic checkpoint policy differs).
type groupKey struct {
	lat, bw, pow float64
	fold, hosts  int
	topo, fault  string
}

func keyOf(sc *Scenario) groupKey {
	k := groupKey{lat: sc.LatencyScale, bw: sc.BandwidthScale, pow: sc.PowerScale,
		fold: sc.Fold, hosts: sc.Hosts, fault: sc.Fault.String()}
	if sc.Topo != nil {
		k.topo = sc.Topo.String()
	}
	return k
}

// forkGroup is one donor prefix shared by two or more member scenarios. The
// donor task fills pr/wall/err exactly once before any member task runs, so
// members read them without locks.
type forkGroup struct {
	members []int // scenario indices, ascending
	cuts    []int // per-rank shared-action counts

	pr   *replay.PrefixRun
	wall time.Duration // donor wall time, attributed to the first member
	err  error         // donor failure: members replay from scratch
}

// planForkGroups partitions the forkable scenarios into prefix-sharing
// groups. It returns the groups in deterministic (first-member) order and a
// per-scenario pointer to its group (nil: the scenario replays normally).
// The prefix plan is computed from the shared trace set at most twice — once
// per cut rule — whatever the grid size.
func planForkGroups(cfg *Config, scenarios []Scenario, multiPart []bool) ([]*forkGroup, []*forkGroup, error) {
	memberOf := make([]*forkGroup, len(scenarios))
	if !cfg.Fork || cfg.Registry != nil || cfg.Traces == nil {
		// Custom registries are opaque to the planner: a handler may keep
		// state across the cut, so forking is disabled wholesale. An
		// all-synthetic sweep has no shared trace set to plan a prefix on.
		return nil, memberOf, nil
	}
	n := cfg.Traces.Ranks()
	var order []groupKey
	byKey := make(map[groupKey][]int)
	for si := range scenarios {
		sc := &scenarios[si]
		if multiPart[si] {
			continue // partitioned scenarios replay on sub-kernels
		}
		if sc.Fault.FailStops() && sc.Ckpt == nil {
			continue // fail-stops play out inside the kernel (abort policy)
		}
		if sc.World > 0 {
			// Synthetic cells regenerate their own streams at their own
			// world size; the prefix plan is computed from the recorded
			// trace set, so they never join a group.
			continue
		}
		k := keyOf(sc)
		if _, seen := byKey[k]; !seen {
			order = append(order, k)
		}
		byKey[k] = append(byKey[k], si)
	}

	visit := func(r int, yield func(trace.Action) bool) error {
		return cfg.Traces.visit(r, yield)
	}
	// The plan depends only on the traces and the cut rule, never on the
	// group key: cache one plan per rule. A nil entry after planning means
	// the prefix is not safely parkable and those groups replay normally.
	var plans [2]*replay.PrefixPlan
	var planned [2]bool
	getPlan := func(collCut bool) (*replay.PrefixPlan, error) {
		idx := 0
		if collCut {
			idx = 1
		}
		if !planned[idx] {
			planned[idx] = true
			plan, ok, err := replay.PlanPrefix(n, collCut, visit)
			if err != nil {
				return nil, err
			}
			if ok {
				plans[idx] = plan
			}
		}
		return plans[idx], nil
	}

	var groups []*forkGroup
	for _, k := range order {
		members := byKey[k]
		if len(members) < 2 {
			continue // nothing to share
		}
		// Members differing in their collective algorithm cut at the first
		// collective-dependent action; members differing only in their
		// analytic checkpoint policy share the whole trace.
		collCut := false
		for _, si := range members[1:] {
			if scenarios[si].Coll != scenarios[members[0]].Coll {
				collCut = true
				break
			}
		}
		plan, err := getPlan(collCut)
		if err != nil {
			return nil, nil, err
		}
		if plan == nil || plan.Actions == 0 {
			continue
		}
		g := &forkGroup{members: members, cuts: plan.Cuts}
		groups = append(groups, g)
		for _, si := range members {
			memberOf[si] = g
		}
	}
	return groups, memberOf, nil
}

// scenarioBuild instantiates the scenario's scaled platform — the common
// first step of every replay variant (from-scratch, donor, forked member).
func scenarioBuild(cfg *Config, sc Scenario) (*platform.Build, error) {
	scale := platform.Scale{
		Latency:   sc.LatencyScale,
		Bandwidth: sc.BandwidthScale,
		Power:     sc.PowerScale,
	}
	if sc.Topo != nil {
		// A generated topology replaces the base platform; the what-if
		// factors multiply the generator's base quantities.
		return sc.Topo.Scaled(scale).Build()
	}
	scaled, err := cfg.Platform.Scaled(scale)
	if err != nil {
		return nil, err
	}
	return platform.Instantiate(scaled)
}

// runDonor replays the group's shared prefix once. sc is the group's first
// member: every field the donor reads (scales, topology, fold, fault stream,
// and — on a full-trace cut — the collective algorithm) is group-common by
// construction of the key. Its checkpoint policy is carried only to satisfy
// the forkability contract; the prefix applies no waste algebra.
func (g *forkGroup) runDonor(ctx context.Context, cfg *Config, model *smpi.Model, sc Scenario, depl *platform.Deployment) {
	defer func() {
		if r := recover(); r != nil {
			g.err = fmt.Errorf("sweep: fork donor (%s) panicked: %v", sc.Name(), r)
		}
	}()
	if err := ctx.Err(); err != nil {
		g.err = err
		return
	}
	b, err := scenarioBuild(cfg, sc)
	if err != nil {
		g.err = err
		return
	}
	n := len(depl.Processes)
	sources := make([]replay.Source, n)
	for i := range sources {
		if sources[i], err = cfg.Traces.source(i); err != nil {
			g.err = err
			return
		}
	}
	rcfg := replay.Config{Model: model, EagerThreshold: cfg.EagerThreshold,
		WorldSize: n, Collectives: sc.Coll, Faults: sc.Fault, Ckpt: sc.Ckpt}
	start := time.Now()
	g.pr, g.err = replay.RunPrefix(b, depl, rcfg, sources, replay.PrefixOptions{
		Cuts:        g.cuts,
		RecordTrace: cfg.Timed || cfg.Profile || cfg.Metrics,
		TieCheck:    cfg.Timed,
	})
	g.wall = time.Since(start)
}

// safeRunMember is safeRunTask for a forked member: panics become the
// scenario's error, and the donor's wall time lands on the group's first
// member so the summed host CPU accounting stays comparable across modes.
func safeRunMember(cfg *Config, model *smpi.Model, sc Scenario, depl *platform.Deployment, p part, g *forkGroup) (out partOut) {
	defer func() {
		if r := recover(); r != nil {
			out = partOut{err: fmt.Errorf("sweep: scenario %d (%s) panicked: %v",
				sc.Index, sc.Name(), r)}
		}
	}()
	out = runMember(cfg, model, sc, depl, p, g)
	if out.res != nil && sc.Index == g.members[0] {
		out.res.WallTime += g.wall
	}
	return out
}

// runMember replays one member scenario from the shared prefix, falling back
// to a from-scratch replay when the donor failed or the forked run could not
// be proven equivalent (replay.ErrForkUnsafe). The first member to arrive
// reuses the donor's own restored kernel; the rest instantiate fresh ones.
func runMember(cfg *Config, model *smpi.Model, sc Scenario, depl *platform.Deployment, p part, g *forkGroup) partOut {
	if g.err != nil || g.pr == nil {
		return runTask(cfg, model, sc, depl, p)
	}
	b := g.pr.ClaimDonorBuild()
	if b == nil {
		var err error
		if b, err = scenarioBuild(cfg, sc); err != nil {
			return partOut{err: err}
		}
	}
	n := len(depl.Processes)
	rcfg := replay.Config{Model: model, EagerThreshold: cfg.EagerThreshold,
		WorldSize: n, Collectives: sc.Coll, Faults: sc.Fault, Ckpt: sc.Ckpt}
	sources := make([]replay.Source, n)
	for i := range sources {
		var err error
		if sources[i], err = cfg.Traces.source(i); err != nil {
			return partOut{err: err}
		}
	}

	var out partOut
	tr := newTaskTracers(cfg, &out, depl.Processes)
	if len(tr.tee) > 0 {
		rcfg.TimedTracer = tr.tee
	}

	out.res, out.err = g.pr.RunForked(b, rcfg, sources)
	if out.err != nil && errors.Is(out.err, replay.ErrForkUnsafe) {
		return runTask(cfg, model, sc, depl, p)
	}
	tr.finish(&out)
	out.components = 1
	if out.err == nil {
		out.forked = true
		out.prefix = g.pr.Actions
	}
	return out
}
