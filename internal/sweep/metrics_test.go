package sweep

import (
	"bytes"
	"context"
	"runtime"
	"strings"
	"testing"

	"tireplay/internal/coll"
	"tireplay/internal/npb"
	"tireplay/internal/platform"
)

// TestSweepMetricsDeterministicAcrossWorkers pins the metrics contract
// end to end: sweep rows carry a POP metrics report, the report survives
// the fork path (coll axis) and the partition merge identically, and the
// metrics-only JSON view is byte-identical between one worker and many —
// the property the CI determinism gate diffs.
func TestSweepMetricsDeterministicAcrossWorkers(t *testing.T) {
	const procs = 8
	ts := luTraces(t, npb.ClassS, procs)
	grid := Grid{
		BandwidthScale: []float64{0.1, 1},
		Coll:           []coll.Config{{}, coll.MustParseSpec("binomial")},
	}
	base := platform.BordereauWithCores(procs, 1)
	run := func(workers int) *Result {
		res, err := Run(context.Background(), &Config{
			Platform: base,
			Grid:     grid,
			Traces:   ts,
			Workers:  workers,
			Metrics:  true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	workers := runtime.NumCPU()
	if workers < 4 {
		workers = 4
	}
	serial := run(1)
	parallel := run(workers)
	for i := range serial.Scenarios {
		s, p := &serial.Scenarios[i], &parallel.Scenarios[i]
		if s.Err != "" || p.Err != "" {
			t.Fatalf("scenario %d failed: %q / %q", i, s.Err, p.Err)
		}
		if s.Metrics == nil || p.Metrics == nil {
			t.Fatalf("scenario %d (%s): missing metrics report", i, s.Name)
		}
		m := s.Metrics
		if len(m.Ranks) != procs {
			t.Fatalf("scenario %d: %d rank rows, want %d", i, len(m.Ranks), procs)
		}
		if m.Summary.ParallelEff <= 0 || m.Summary.ParallelEff > 1 {
			t.Fatalf("scenario %d: parallel eff %g out of range", i, m.Summary.ParallelEff)
		}
		if len(m.Windows) != 10 {
			t.Fatalf("scenario %d: %d windows, want the default 10", i, len(m.Windows))
		}
		if s.Metrics.Makespan != s.SimulatedTime {
			t.Fatalf("scenario %d: metrics makespan %g != simulated time %g",
				i, s.Metrics.Makespan, s.SimulatedTime)
		}
	}
	var j1, j2 bytes.Buffer
	if err := serial.WriteMetricsJSON(&j1); err != nil {
		t.Fatal(err)
	}
	if err := parallel.WriteMetricsJSON(&j2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1.Bytes(), j2.Bytes()) {
		t.Fatal("metrics JSON differs across worker counts")
	}
	// Starving bandwidth by 10x must show up as lost communication
	// efficiency, not just a longer makespan — the ranking the new
	// columns exist for.
	slow, fast := serial.Scenarios[0].Metrics.Summary, serial.Scenarios[2].Metrics.Summary
	if !(slow.CommEff < fast.CommEff) {
		t.Fatalf("bw=0.1 comm eff %g not below bw=1 %g", slow.CommEff, fast.CommEff)
	}
}

// TestSweepMetricsPartitioned checks the multi-sink merge: a scenario
// split across two disjoint platform components folds both sinks into one
// report covering all ranks.
func TestSweepMetricsPartitioned(t *testing.T) {
	ts := disjointTraces()
	res, err := Run(context.Background(), &Config{
		Platform:  disjointPlatform(),
		Grid:      Grid{},
		Traces:    ts,
		Partition: true,
		Metrics:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sc := &res.Scenarios[0]
	if sc.Err != "" {
		t.Fatal(sc.Err)
	}
	if sc.Components != 2 {
		t.Fatalf("components = %d, want a split scenario", sc.Components)
	}
	m := sc.Metrics
	if m == nil || len(m.Ranks) != 4 {
		t.Fatalf("partitioned metrics: %+v", m)
	}
	var names []string
	for _, r := range m.Ranks {
		names = append(names, r.Rank)
	}
	if got := strings.Join(names, ","); got != "p0,p1,p2,p3" {
		t.Fatalf("merged rank order %q", got)
	}
}

// TestRenderTableMetricsColumns checks the conditional table columns.
func TestRenderTableMetricsColumns(t *testing.T) {
	const procs = 4
	ts := luTraces(t, npb.ClassS, procs)
	res, err := Run(context.Background(), &Config{
		Platform: platform.BordereauWithCores(procs, 1),
		Grid:     Grid{},
		Traces:   ts,
		Metrics:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.RenderTable(&buf)
	out := buf.String()
	for _, col := range []string{"parEff", "ldBal", "commE", "serE", "trfE"} {
		if !strings.Contains(out, col) {
			t.Errorf("table lacks %q column:\n%s", col, out)
		}
	}
	// Without metrics the columns must not appear.
	res2, err := Run(context.Background(), &Config{
		Platform: platform.BordereauWithCores(procs, 1),
		Grid:     Grid{},
		Traces:   ts,
	})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	res2.RenderTable(&buf)
	if strings.Contains(buf.String(), "parEff") {
		t.Errorf("metrics columns leaked into a plain sweep:\n%s", buf.String())
	}
}
