package sweep

import (
	"context"
	"sync"
	"testing"

	"tireplay/internal/coll"
	"tireplay/internal/npb"
	"tireplay/internal/platform"
)

// TestEngineReuseAcrossRuns holds one Engine across several Run calls —
// the resident-daemon usage — and checks each run matches the one-shot
// package Run, sequentially and concurrently.
func TestEngineReuseAcrossRuns(t *testing.T) {
	traces := luTraces(t, npb.ClassS, 4)
	plat := platform.BordereauWithCores(4, 1)
	grids := []Grid{
		{LatencyScale: []float64{1, 2}, BandwidthScale: []float64{1, 10}},
		{Coll: mustColls(t, "default;bcast=binomial"), Fold: []int{1, 2}},
		{LatencyScale: []float64{0.5, 1, 4}},
	}
	cfgFor := func(g Grid) *Config {
		return &Config{Platform: plat, Grid: g, Traces: traces, Fork: true}
	}
	want := make([]*Result, len(grids))
	for i, g := range grids {
		r, err := Run(context.Background(), cfgFor(g))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}

	e := NewEngine(2)
	defer e.Close()

	// Sequential reuse.
	for i, g := range grids {
		got, err := e.Run(context.Background(), cfgFor(g))
		if err != nil {
			t.Fatalf("reused run %d: %v", i, err)
		}
		assertSameScenarios(t, want[i], got)
	}

	// Concurrent reuse: several sweeps interleaved on one pool.
	var wg sync.WaitGroup
	for i, g := range grids {
		wg.Add(1)
		go func(i int, g Grid) {
			defer wg.Done()
			got, err := e.Run(context.Background(), cfgFor(g))
			if err != nil {
				t.Errorf("concurrent run %d: %v", i, err)
				return
			}
			assertSameScenarios(t, want[i], got)
		}(i, g)
	}
	wg.Wait()
}

// mustColls parses a coll axis spec.
func mustColls(t *testing.T, spec string) []coll.Config {
	t.Helper()
	cs, err := ParseCollList(spec)
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

// assertSameScenarios compares the deterministic scenario fields of two
// results (wall time and fork accounting legitimately differ).
func assertSameScenarios(t *testing.T, want, got *Result) {
	t.Helper()
	if len(got.Scenarios) != len(want.Scenarios) {
		t.Fatalf("got %d scenarios, want %d", len(got.Scenarios), len(want.Scenarios))
	}
	for i := range want.Scenarios {
		w, g := &want.Scenarios[i], &got.Scenarios[i]
		if g.Name != w.Name || g.SimulatedTime != w.SimulatedTime ||
			g.Actions != w.Actions || g.Err != w.Err {
			t.Fatalf("scenario %d: got {%s t=%g a=%d err=%q}, want {%s t=%g a=%d err=%q}",
				i, g.Name, g.SimulatedTime, g.Actions, g.Err,
				w.Name, w.SimulatedTime, w.Actions, w.Err)
		}
	}
}
