package sweep

import (
	"bytes"
	"context"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"tireplay/internal/npb"
	"tireplay/internal/platform"
	"tireplay/internal/replay"
	"tireplay/internal/smpi"
	"tireplay/internal/trace"
)

// within reports whether a and b agree to the relative tolerance tol.
func within(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if b > m {
		m = b
	}
	return d <= tol*m
}

// TestParseFaultAndCkptLists covers the two resilience axes' list syntax:
// semicolon-separated specs with "none" kept as the clean cell.
func TestParseFaultAndCkptLists(t *testing.T) {
	fs, err := ParseFaultList("none;host:1@5;hosts:25%@10,mtbf:3600")
	if err != nil || len(fs) != 3 {
		t.Fatalf("ParseFaultList = %v, %v", fs, err)
	}
	if fs[0] != nil {
		t.Fatal("a none entry must stay as the fault-free cell")
	}
	if fs[1] == nil || len(fs[1].HostFails) != 1 || fs[1].HostFails[0].At != 5 {
		t.Fatalf("fault entry 1 = %+v", fs[1])
	}
	if fs[2] == nil || fs[2].MTBF != 3600 || len(fs[2].PctFails) != 1 {
		t.Fatalf("fault entry 2 = %+v", fs[2])
	}
	if _, err := ParseFaultList("host:1"); err == nil {
		t.Fatal("bad fault spec must fail")
	}
	if fs, err := ParseFaultList(""); err != nil || fs != nil {
		t.Fatalf("empty fault list = %v, %v", fs, err)
	}

	cks, err := ParseCkptList("none;30/5;60/5/10/30;")
	if err != nil || len(cks) != 3 {
		t.Fatalf("ParseCkptList = %v, %v", cks, err)
	}
	if cks[0] != nil || cks[1].Interval != 30 || cks[1].Cost != 5 || cks[2].Down != 30 {
		t.Fatalf("ckpt entries = %v", cks)
	}
	if _, err := ParseCkptList("abc"); err == nil {
		t.Fatal("bad ckpt spec must fail")
	}
	if cks, err := ParseCkptList(""); err != nil || cks != nil {
		t.Fatalf("empty ckpt list = %v, %v", cks, err)
	}
}

// TestSweepFaultAxisDeterministicAcrossWorkers extends the engine's core
// determinism guarantee to the resilience axes: a 2x2 {fault} x {ckpt} grid
// over LU class S replayed at workers=1 and workers=NumCPU must agree
// byte-for-byte — timed traces, abort diagnoses and waste accountings alike.
func TestSweepFaultAxisDeterministicAcrossWorkers(t *testing.T) {
	const procs = 4
	ts := luTraces(t, npb.ClassS, procs)
	fault, err := platform.ParseFaultSpec("host:1@0.01")
	if err != nil {
		t.Fatal(err)
	}
	ck, err := replay.ParseCkpt("0.02/0.002/0.001/0.001")
	if err != nil {
		t.Fatal(err)
	}
	grid := Grid{
		Faults: []*platform.FaultSpec{nil, fault},
		Ckpt:   []*replay.Ckpt{nil, ck},
	}
	if grid.Size() != 4 {
		t.Fatalf("grid expands to %d scenarios, want 4", grid.Size())
	}
	base := platform.BordereauWithCores(procs, 1)
	run := func(workers int) *Result {
		res, err := Run(context.Background(), &Config{
			Platform: base,
			Grid:     grid,
			Traces:   ts,
			Workers:  workers,
			Timed:    true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	workers := runtime.NumCPU()
	if workers < 4 {
		workers = 4
	}
	serial := run(1)
	parallel := run(workers)
	for i := range serial.Scenarios {
		s, p := &serial.Scenarios[i], &parallel.Scenarios[i]
		if s.Err != p.Err {
			t.Fatalf("scenario %d (%s): error %q (serial) != %q (parallel)", i, s.Name, s.Err, p.Err)
		}
		if s.Err != "" {
			continue
		}
		if s.SimulatedTime != p.SimulatedTime || s.Actions != p.Actions {
			t.Fatalf("scenario %d (%s): serial %g/%d != parallel %g/%d",
				i, s.Name, s.SimulatedTime, s.Actions, p.SimulatedTime, p.Actions)
		}
		if !bytes.Equal(s.TimedTrace, p.TimedTrace) {
			t.Fatalf("scenario %d (%s): timed traces differ across worker counts", i, s.Name)
		}
		if !reflect.DeepEqual(s.Resilience, p.Resilience) {
			t.Fatalf("scenario %d (%s): resilience %+v != %+v", i, s.Name, s.Resilience, p.Resilience)
		}
	}

	// Expansion order: ckpt outermost, then fault. Check each cell's policy.
	clean, abort, ride0, ride1 := &serial.Scenarios[0], &serial.Scenarios[1],
		&serial.Scenarios[2], &serial.Scenarios[3]
	if clean.Err != "" || clean.Resilience != nil {
		t.Fatalf("fault-free cell: err=%q resilience=%+v", clean.Err, clean.Resilience)
	}
	if !strings.Contains(abort.Name, "fault=host:1@0.01") ||
		!strings.Contains(abort.Err, "lost to fail-stop faults") {
		t.Fatalf("abort cell %q: err = %q, want a FailedRanksError diagnosis", abort.Name, abort.Err)
	}
	if !strings.Contains(ride1.Name, "ckpt=0.02/0.002/0.001/0.001") {
		t.Fatalf("ckpt cell name %q misses the protocol", ride1.Name)
	}
	if ride0.Resilience == nil || ride0.Resilience.Failures != 0 || ride0.Resilience.Checkpoints == 0 {
		t.Fatalf("ckpt-without-fault cell resilience = %+v", ride0.Resilience)
	}
	r := ride1.Resilience
	if r == nil || r.Failures != 1 {
		t.Fatalf("ckpt+fault cell resilience = %+v, want exactly 1 failure", r)
	}
	if r.Effective <= ride0.Resilience.Effective {
		t.Fatalf("a failure must not come for free: effective %g <= fault-free-with-ckpt %g",
			r.Effective, ride0.Resilience.Effective)
	}
	// The waste identity holds exactly in the walker's own accumulation
	// order; re-summing the parts here may differ by rounding, so compare
	// to a relative ulp-scale tolerance.
	if got := r.FaultFree + r.CkptTime + r.Wasted + r.Downtime; !within(got, r.Effective, 1e-12) {
		t.Fatalf("waste identity broken: %g != effective %g", got, r.Effective)
	}
	if clean.SimulatedTime != r.FaultFree {
		t.Fatalf("fault-free makespan %g != resilience baseline %g", clean.SimulatedTime, r.FaultFree)
	}

	// The rendered table grows the resilience columns, with "-" for cells
	// without an accounting.
	var tab bytes.Buffer
	serial.RenderTable(&tab)
	out := tab.String()
	for _, want := range []string{"fault-free", "wasted", "recomputed", "fails",
		"fault=host:1@0.01", "lost to fail-stop faults"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table misses %q:\n%s", want, out)
		}
	}
}

// TestSweepPanickingScenarioIsIsolated wires a handler that deliberately
// panics on the scaled-up cell of a power sweep: that scenario must report
// the panic as its error while its siblings complete normally — a crashing
// scenario never takes down the sweep.
func TestSweepPanickingScenarioIsIsolated(t *testing.T) {
	const procs = 4
	ts := luTraces(t, npb.ClassS, procs)
	base := platform.BordereauWithCores(procs, 1)
	b, err := platform.Instantiate(base)
	if err != nil {
		t.Fatal(err)
	}
	baseSpeed := b.Kernel.Host(b.HostNames[0]).Speed

	def, err := replay.Default().Lookup(trace.Compute)
	if err != nil {
		t.Fatal(err)
	}
	reg := replay.Default()
	reg.Register("compute", func(p *replay.Proc, a trace.Action) error {
		if p.Sim.Host().Speed > 1.5*baseSpeed {
			panic("deliberate test panic on the fast platform")
		}
		return def(p, a)
	})

	res, err := Run(context.Background(), &Config{
		Platform: base,
		Grid:     Grid{PowerScale: []float64{1, 2}},
		Traces:   ts,
		Registry: reg,
		Workers:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenarios) != 2 {
		t.Fatalf("expanded %d scenarios, want 2", len(res.Scenarios))
	}
	ok, boom := &res.Scenarios[0], &res.Scenarios[1]
	if ok.Err != "" || ok.SimulatedTime <= 0 {
		t.Fatalf("sibling scenario (%s) did not complete: err=%q t=%g", ok.Name, ok.Err, ok.SimulatedTime)
	}
	if !strings.Contains(boom.Err, "panicked") ||
		!strings.Contains(boom.Err, "deliberate test panic") {
		t.Fatalf("panicking scenario (%s) err = %q, want the panic surfaced", boom.Name, boom.Err)
	}
}

// TestSafeRunTaskRecoversWorkerPanic exercises the pool-side recover
// directly: a panic raised in the worker goroutine itself (here a nil
// deployment dereference) becomes the component's error.
func TestSafeRunTaskRecoversWorkerPanic(t *testing.T) {
	sc := Scenario{LatencyScale: 1, BandwidthScale: 1, PowerScale: 1, Fold: 1}
	out := safeRunTask(&Config{Platform: disjointPlatform()}, smpi.Default(), sc, nil, wholePart(2))
	if out.err == nil || !strings.Contains(out.err.Error(), "panicked") {
		t.Fatalf("safeRunTask error = %v, want a recovered panic", out.err)
	}
}
