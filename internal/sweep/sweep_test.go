package sweep

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"tireplay/internal/coll"
	"tireplay/internal/mpi"
	"tireplay/internal/npb"
	"tireplay/internal/platform"
	"tireplay/internal/trace"
)

// luTraces acquires one LU trace set through the recorder engine.
func luTraces(t testing.TB, class npb.Class, procs int) *TraceSet {
	t.Helper()
	prog, err := npb.LU(npb.LUConfig{Class: class, Procs: procs})
	if err != nil {
		t.Fatal(err)
	}
	perRank := make([][]trace.Action, procs)
	for r := 0; r < procs; r++ {
		if perRank[r], err = mpi.Record(r, procs, prog); err != nil {
			t.Fatal(err)
		}
	}
	return TracesFromActions(perRank)
}

func TestExpandDeterministicOrder(t *testing.T) {
	g := Grid{LatencyScale: []float64{1, 2}, BandwidthScale: []float64{1, 10}, Fold: []int{1, 2}}
	scs := g.Expand()
	if len(scs) != g.Size() || len(scs) != 8 {
		t.Fatalf("expanded %d scenarios, Size()=%d, want 8", len(scs), g.Size())
	}
	// Latency is the innermost axis; indices are positional.
	if scs[0].LatencyScale != 1 || scs[1].LatencyScale != 2 || scs[2].BandwidthScale != 10 {
		t.Fatalf("unexpected order: %+v", scs[:3])
	}
	for i, sc := range scs {
		if sc.Index != i {
			t.Fatalf("scenario %d has index %d", i, sc.Index)
		}
		if sc.Fold < 1 {
			t.Fatalf("scenario %d fold %d", i, sc.Fold)
		}
	}
	if (Grid{}).Size() != 1 {
		t.Fatal("zero grid must hold exactly the identity scenario")
	}
}

func TestParseLists(t *testing.T) {
	fs, err := ParseFloatList(" 0.5, 1,2 ")
	if err != nil || len(fs) != 3 || fs[0] != 0.5 {
		t.Fatalf("ParseFloatList = %v, %v", fs, err)
	}
	if _, err := ParseFloatList("1,-2"); err == nil {
		t.Fatal("negative factor must fail")
	}
	is, err := ParseIntList("1,2,4")
	if err != nil || len(is) != 3 || is[2] != 4 {
		t.Fatalf("ParseIntList = %v, %v", is, err)
	}
	if _, err := ParseIntList("0"); err == nil {
		t.Fatal("zero count must fail")
	}
	cs, err := ParseCollList("linear; binomial;bcast=binomial,allReduce=ring")
	if err != nil || len(cs) != 3 ||
		cs[0].For(coll.KindBcast) != coll.Linear ||
		cs[1].For(coll.KindBcast) != coll.Binomial ||
		cs[2].For(coll.KindAllReduce) != coll.Ring {
		t.Fatalf("ParseCollList = %v, %v", cs, err)
	}
	// Trailing and doubled semicolons are not extra default scenarios.
	cs, err = ParseCollList("linear;;binomial;")
	if err != nil || len(cs) != 2 {
		t.Fatalf("ParseCollList with empty parts = %v, %v", cs, err)
	}
	if _, err := ParseCollList("linear;bcast=ring"); err == nil {
		t.Fatal("unsupported pair must fail")
	}
	if cs, err := ParseCollList(""); err != nil || cs != nil {
		t.Fatalf("empty coll list = %v, %v", cs, err)
	}
}

// TestSweepDeterministicAcrossWorkers is the engine's core guarantee: the
// same grid replayed at workers=1 and workers=NumCPU (at least 4, so the
// pool really interleaves) produces byte-identical per-scenario timed traces
// and identical makespans. The race job replays this test under -race, which
// doubles as the shared-trace data-race check.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	const procs = 8
	ts := luTraces(t, npb.ClassS, procs)
	grid := Grid{
		LatencyScale:   []float64{1, 2},
		BandwidthScale: []float64{0.5, 1},
		PowerScale:     []float64{1, 2},
	}
	base := platform.BordereauWithCores(procs, 1)
	run := func(workers int) *Result {
		res, err := Run(context.Background(), &Config{
			Platform: base,
			Grid:     grid,
			Traces:   ts,
			Workers:  workers,
			Timed:    true,
			Profile:  true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	workers := runtime.NumCPU()
	if workers < 4 {
		workers = 4
	}
	serial := run(1)
	parallel := run(workers)
	if len(serial.Scenarios) != 8 || len(parallel.Scenarios) != 8 {
		t.Fatalf("scenario counts: %d vs %d", len(serial.Scenarios), len(parallel.Scenarios))
	}
	for i := range serial.Scenarios {
		s, p := &serial.Scenarios[i], &parallel.Scenarios[i]
		if s.Err != "" || p.Err != "" {
			t.Fatalf("scenario %d failed: %q / %q", i, s.Err, p.Err)
		}
		if s.SimulatedTime != p.SimulatedTime {
			t.Fatalf("scenario %d (%s): makespan %g (serial) != %g (parallel)",
				i, s.Name, s.SimulatedTime, p.SimulatedTime)
		}
		if s.Actions != p.Actions {
			t.Fatalf("scenario %d: actions %d != %d", i, s.Actions, p.Actions)
		}
		if !bytes.Equal(s.TimedTrace, p.TimedTrace) {
			t.Fatalf("scenario %d (%s): timed traces differ (%d vs %d bytes)",
				i, s.Name, len(s.TimedTrace), len(p.TimedTrace))
		}
		if len(s.TimedTrace) == 0 {
			t.Fatalf("scenario %d: empty timed trace", i)
		}
		if len(s.Profile) != procs || len(p.Profile) != procs {
			t.Fatalf("scenario %d: profile rows %d / %d", i, len(s.Profile), len(p.Profile))
		}
	}
	// The grid must actually change predictions: at equal network, doubling
	// the flop rate (scenario 7 vs 3) must shorten the makespan.
	if serial.Scenarios[7].SimulatedTime >= serial.Scenarios[3].SimulatedTime {
		t.Fatalf("scenario 7 (%s) %g not faster than scenario 3 (%s) %g",
			serial.Scenarios[7].Name, serial.Scenarios[7].SimulatedTime,
			serial.Scenarios[3].Name, serial.Scenarios[3].SimulatedTime)
	}
}

// disjointTraces builds a 4-rank trace whose communication stays inside the
// pairs (0,1) and (2,3): the shape that lets a two-cluster scenario split
// onto two kernels.
func disjointTraces() *TraceSet {
	mk := func(r, peer int) []trace.Action {
		return []trace.Action{
			{Proc: r, Type: trace.Compute, Volume: 1e8, Peer: -1},
			{Proc: r, Type: trace.Send, Peer: peer, Volume: 1e4},
			{Proc: r, Type: trace.Irecv, Peer: peer},
			{Proc: r, Type: trace.Wait, Peer: -1},
			{Proc: r, Type: trace.Compute, Volume: 5e7, Peer: -1},
		}
	}
	return TracesFromActions([][]trace.Action{mk(0, 1), mk(1, 0), mk(2, 3), mk(3, 2)})
}

// disjointPlatform declares two 2-host clusters with no route between them.
func disjointPlatform() *platform.Platform {
	return &platform.Platform{
		Version: "3",
		AS: platform.AS{
			ID: "AS_split", Routing: "Full",
			Clusters: []platform.Cluster{
				{ID: "alpha", Prefix: "a-", Radical: "0-1", Power: "1E9", BW: "1.25E8", Lat: "1E-5"},
				{ID: "beta", Prefix: "b-", Radical: "0-1", Power: "1E9", BW: "1.25E8", Lat: "1E-5"},
			},
		},
	}
}

func TestPartitionSplitsDisjointScenario(t *testing.T) {
	ts := disjointTraces()
	cfg := &Config{
		Platform:  disjointPlatform(),
		Traces:    ts,
		Workers:   2,
		Timed:     true,
		Partition: true,
	}
	split, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := split.Scenarios[0].Components; got != 2 {
		t.Fatalf("partitioned scenario ran on %d kernels, want 2 (err=%q)",
			got, split.Scenarios[0].Err)
	}
	cfg.Partition = false
	whole, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if whole.Scenarios[0].Components != 1 {
		t.Fatalf("unpartitioned scenario ran on %d kernels", whole.Scenarios[0].Components)
	}
	// Disjoint components share no link, so the split simulation agrees
	// exactly with the single-kernel one.
	if split.Scenarios[0].SimulatedTime != whole.Scenarios[0].SimulatedTime {
		t.Fatalf("split makespan %g != whole %g",
			split.Scenarios[0].SimulatedTime, whole.Scenarios[0].SimulatedTime)
	}
	if split.Scenarios[0].Actions != whole.Scenarios[0].Actions {
		t.Fatalf("split actions %d != whole %d",
			split.Scenarios[0].Actions, whole.Scenarios[0].Actions)
	}
	// And the split itself is deterministic across worker counts.
	cfg.Partition = true
	cfg.Workers = 1
	serial, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Scenarios[0].TimedTrace, split.Scenarios[0].TimedTrace) {
		t.Fatal("partitioned timed trace depends on worker count")
	}
}

func TestPartitionRefusesCrossComponentTraffic(t *testing.T) {
	// Rank 1 talks to rank 2 across the cluster gap: the scenario must fall
	// back to a single kernel — where the replay then fails loudly because
	// no route exists, rather than silently mis-simulating.
	mk := func(r, peer int) []trace.Action {
		return []trace.Action{
			{Proc: r, Type: trace.Send, Peer: peer, Volume: 1e4},
			{Proc: r, Type: trace.Recv, Peer: peer},
		}
	}
	ts := TracesFromActions([][]trace.Action{mk(0, 1), mk(1, 0), mk(2, 3), mk(3, 2)})
	ts.perRank[1] = append(ts.perRank[1], trace.Action{Proc: 1, Type: trace.Isend, Peer: 2, Volume: 10})
	ts.perRank[2] = append(ts.perRank[2], trace.Action{Proc: 2, Type: trace.Irecv, Peer: 1},
		trace.Action{Proc: 2, Type: trace.Wait, Peer: -1})
	g, err := analyze(ts)
	if err != nil {
		t.Fatal(err)
	}
	comps, err := disjointPlatform().Components()
	if err != nil {
		t.Fatal(err)
	}
	hostComp := map[string]int{}
	for ci, comp := range comps {
		for _, h := range comp {
			hostComp[h] = ci
		}
	}
	hosts, _ := disjointPlatform().Hosts()
	d, err := platform.RoundRobin(hosts, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if parts := partition(g, hostComp, d.Processes); len(parts) != 1 {
		t.Fatalf("cross-component trace split into %d parts", len(parts))
	}
	// A collective likewise pins the scenario to one kernel.
	ts2 := disjointTraces()
	ts2.perRank[0] = append(ts2.perRank[0], trace.Action{Proc: 0, Type: trace.Barrier, Peer: -1})
	g2, err := analyze(ts2)
	if err != nil {
		t.Fatal(err)
	}
	if !g2.collective {
		t.Fatal("collective not detected")
	}
	if parts := partition(g2, hostComp, d.Processes); len(parts) != 1 {
		t.Fatalf("collective trace split into %d parts", len(parts))
	}
}

// TestSweepCancellation cancels the context from the first completed
// scenario's callback: the sweep must stop scheduling, mark unstarted
// scenarios as cancelled, return ctx.Err(), and leak no goroutines.
func TestSweepCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	ts := luTraces(t, npb.ClassS, 4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res, err := Run(ctx, &Config{
		Platform: platform.BordereauWithCores(4, 1),
		Grid:     Grid{LatencyScale: []float64{1, 2, 4, 8}, BandwidthScale: []float64{1, 2, 4, 8}},
		Traces:   ts,
		Workers:  2,
		OnResult: func(*ScenarioResult) { cancel() },
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	done, canceled := 0, 0
	for _, sc := range res.Scenarios {
		switch sc.Err {
		case "":
			done++
		case "sweep: canceled":
			canceled++
		default:
			t.Fatalf("scenario %d: unexpected error %q", sc.Index, sc.Err)
		}
	}
	if done == 0 {
		t.Fatal("no scenario completed before cancellation")
	}
	if canceled == 0 {
		t.Fatal("cancellation skipped nothing: test raced to completion, enlarge the grid")
	}
	// All pool goroutines (and every kernel goroutine they spawned) must be
	// gone; allow the runtime a moment to unwind them.
	for i := 0; i < 50; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

func TestLoadDirMixedEncodings(t *testing.T) {
	dir := t.TempDir()
	acts := [][]trace.Action{
		{{Proc: 0, Type: trace.Compute, Volume: 1e6, Peer: -1}},
		{{Proc: 1, Type: trace.Compute, Volume: 2e6, Peer: -1}},
	}
	// Rank 0 as text, rank 1 as binary.
	if err := os.WriteFile(filepath.Join(dir, trace.ProcessFileName(0)),
		[]byte(acts[0][0].Format()+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(filepath.Join(dir, trace.BinaryFileName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.EncodeBinary(f, acts[1]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	ts, err := LoadDir(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	for r := 0; r < 2; r++ {
		var got []trace.Action
		if err := ts.visit(r, func(a trace.Action) bool { got = append(got, a); return true }); err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0].Volume != acts[r][0].Volume {
			t.Fatalf("rank %d: %+v", r, got)
		}
	}
	if _, err := LoadDir(dir, 3); err == nil {
		t.Fatal("missing rank must fail")
	}
}

func TestRenderOutputs(t *testing.T) {
	ts := disjointTraces()
	res, err := Run(context.Background(), &Config{
		Platform: disjointPlatform(),
		Grid:     Grid{PowerScale: []float64{1, 2}},
		Traces:   ts,
	})
	if err != nil {
		t.Fatal(err)
	}
	var tab, js bytes.Buffer
	res.RenderTable(&tab)
	if err := res.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"pow=1", "pow=2", "speedup"} {
		if !bytes.Contains(tab.Bytes(), []byte(want)) {
			t.Fatalf("table misses %q:\n%s", want, tab.String())
		}
	}
	if !bytes.Contains(js.Bytes(), []byte(`"simulated_time"`)) {
		t.Fatalf("json misses simulated_time:\n%s", js.String())
	}
}

// TestSweepCollAxisDeterministicAcrossWorkers extends the determinism
// guarantee to the collective-algorithm axis, at the acceptance scale of the
// axis: an 8-scenario `tisweep -coll`-style sweep over LU class A replayed
// at workers=1 and workers=NumCPU must produce byte-identical per-scenario
// timed traces — and the axis must actually move the prediction, with the
// binomial scenarios' makespans differing from the linear ones' in the
// rendered table.
func TestSweepCollAxisDeterministicAcrossWorkers(t *testing.T) {
	const procs = 8
	ts := luTraces(t, npb.ClassA, procs)
	// The latency axis weights the collective topology: LU's norm
	// reductions are 40-byte messages, so at 20x latency the star-vs-tree
	// depth difference dominates those cells of the grid.
	grid := Grid{
		LatencyScale: []float64{1, 20},
		Coll: []coll.Config{
			{},
			coll.MustParseSpec("binomial"),
			coll.MustParseSpec("allReduce=ring"),
			coll.MustParseSpec("auto"),
		},
	}
	if grid.Size() != 8 {
		t.Fatalf("grid expands to %d scenarios, want 8", grid.Size())
	}
	base := platform.BordereauWithCores(procs, 1)
	run := func(workers int) *Result {
		res, err := Run(context.Background(), &Config{
			Platform: base,
			Grid:     grid,
			Traces:   ts,
			Workers:  workers,
			Timed:    true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	workers := runtime.NumCPU()
	if workers < 4 {
		workers = 4
	}
	serial := run(1)
	parallel := run(workers)
	for i := range serial.Scenarios {
		s, p := &serial.Scenarios[i], &parallel.Scenarios[i]
		if s.Err != "" || p.Err != "" {
			t.Fatalf("scenario %d failed: %q / %q", i, s.Err, p.Err)
		}
		if s.SimulatedTime != p.SimulatedTime || s.Actions != p.Actions {
			t.Fatalf("scenario %d (%s): serial %g/%d != parallel %g/%d",
				i, s.Name, s.SimulatedTime, s.Actions, p.SimulatedTime, p.Actions)
		}
		if !bytes.Equal(s.TimedTrace, p.TimedTrace) || len(s.TimedTrace) == 0 {
			t.Fatalf("scenario %d (%s): timed traces differ across worker counts "+
				"(%d vs %d bytes)", i, s.Name, len(s.TimedTrace), len(p.TimedTrace))
		}
	}
	// Scenario 1 is linear at lat=20, scenario 3 binomial at lat=20: the
	// algorithm axis must change the predicted makespan.
	lin, bin := &serial.Scenarios[1], &serial.Scenarios[3]
	if !strings.Contains(bin.Name, "coll=binomial") || !strings.Contains(bin.Name, "lat=20") {
		t.Fatalf("scenario 3 is %q, want the binomial lat=20 cell", bin.Name)
	}
	if bin.SimulatedTime >= lin.SimulatedTime {
		t.Fatalf("binomial makespan %g not below linear %g at 20x latency — the axis is inert",
			bin.SimulatedTime, lin.SimulatedTime)
	}
	// And the rendered table shows both cells with distinct predictions.
	var tab bytes.Buffer
	serial.RenderTable(&tab)
	out := tab.String()
	for _, want := range []string{"coll=binomial", "coll=allReduce=ring", "coll=auto"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table misses %q:\n%s", want, out)
		}
	}
	linRow, binRow := tableRow(out, lin.Name), tableRow(out, bin.Name)
	if linRow == "" || binRow == "" || fieldAfterName(linRow) == fieldAfterName(binRow) {
		t.Fatalf("table rows do not show distinct linear vs binomial predictions:\n%s", out)
	}
}

// tableRow returns the rendered table line whose scenario label is name.
func tableRow(table, name string) string {
	for _, line := range strings.Split(table, "\n") {
		if strings.HasPrefix(line, name+" ") || strings.HasPrefix(strings.TrimSpace(line), name) {
			return line
		}
	}
	return ""
}

// fieldAfterName extracts the predicted-time cell of a table row.
func fieldAfterName(row string) string {
	parts := strings.Split(row, "|")
	if len(parts) < 2 {
		return ""
	}
	return strings.TrimSpace(parts[1])
}
