package sweep

import (
	"context"
	"runtime"
	"testing"
	"time"

	"tireplay/internal/coll"
	"tireplay/internal/mpi"
	"tireplay/internal/npb"
	"tireplay/internal/platform"
	"tireplay/internal/trace"
)

// BenchmarkSweepParallel is the CI scaling gate of the parallel sweep
// engine: each iteration replays the same 8-scenario what-if grid twice —
// once on a single worker, once on min(4, NumCPU) workers — over one shared
// LU trace, checks the scenario results agree exactly, and reports the
// wall-clock ratio as the "speedup" metric. cmd/benchdiff enforces a floor
// on that metric in CI (-floor 'BenchmarkSweepParallel:speedup=3' on the
// 4-core runner): per-scenario kernels are independent, so an 8-scenario
// sweep must scale near-linearly to 4 workers. ns/op covers both runs, so
// the usual regression threshold also guards the engine's serial overhead.
func BenchmarkSweepParallel(b *testing.B) {
	const procs = 8
	prog, err := npb.LU(npb.LUConfig{Class: npb.ClassA, Procs: procs})
	if err != nil {
		b.Fatal(err)
	}
	perRank := make([][]trace.Action, procs)
	for r := 0; r < procs; r++ {
		if perRank[r], err = mpi.Record(r, procs, prog); err != nil {
			b.Fatal(err)
		}
	}
	ts := TracesFromActions(perRank)
	base := platform.BordereauWithCores(procs, 1)
	grid := Grid{
		LatencyScale:   []float64{1, 2},
		BandwidthScale: []float64{0.5, 1},
		PowerScale:     []float64{1, 2},
	}
	workers := 4
	if n := runtime.NumCPU(); n < workers {
		workers = n
	}
	run := func(w int) *Result {
		res, err := Run(context.Background(), &Config{
			Platform: base, Grid: grid, Traces: ts, Workers: w,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res
	}

	b.ResetTimer()
	var serial, parallel time.Duration
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		rs := run(1)
		t1 := time.Now()
		rp := run(workers)
		t2 := time.Now()
		serial += t1.Sub(t0)
		parallel += t2.Sub(t1)
		for j := range rs.Scenarios {
			if rs.Scenarios[j].SimulatedTime != rp.Scenarios[j].SimulatedTime {
				b.Fatalf("scenario %d: serial %g != parallel %g", j,
					rs.Scenarios[j].SimulatedTime, rp.Scenarios[j].SimulatedTime)
			}
		}
	}
	b.StopTimer()
	if parallel > 0 {
		b.ReportMetric(float64(serial)/float64(parallel), "speedup")
	}
	b.ReportMetric(float64(parallel.Nanoseconds())/float64(b.N), "parallel-ns/op")
}

// BenchmarkSweepForkedPrefix is the CI gate of shared-prefix forking: each
// iteration replays an 8-member collective-algorithm grid over a trace whose
// cost is dominated by a long shared prefix, once with -fork=off and once
// with -fork=on — both on a single worker, so the metric isolates the
// algorithmic saving from pool scaling — checks the results agree exactly,
// and reports unforked/forked wall as the "speedup" metric. cmd/benchdiff
// enforces a floor on it in CI (-floor 'BenchmarkSweepForkedPrefix:speedup=2.86',
// i.e. forked wall at most 0.35x unforked): eight scenarios sharing one
// prefix must not replay it eight times.
func BenchmarkSweepForkedPrefix(b *testing.B) {
	const procs = 8
	const iters = 400
	perRank := make([][]trace.Action, procs)
	for r := 0; r < procs; r++ {
		acts := make([]trace.Action, 0, 3*iters+2)
		for i := 0; i < iters; i++ {
			// Identical per-rank work keeps every park time equal, so the
			// forked members are provably safe (no fallback noise in the
			// measurement). Eager ring sends keep the prefix balanced.
			acts = append(acts,
				trace.Action{Proc: r, Type: trace.Compute, Peer: -1, Volume: 1e5},
				trace.Action{Proc: r, Type: trace.Send, Peer: (r + 1) % procs, Volume: 1024},
				trace.Action{Proc: r, Type: trace.Recv, Peer: (r + procs - 1) % procs})
		}
		acts = append(acts,
			trace.Action{Proc: r, Type: trace.AllReduce, Peer: -1, Volume: 1e5, Volume2: 1e6},
			trace.Action{Proc: r, Type: trace.Compute, Peer: -1, Volume: 1e5})
		perRank[r] = acts
	}
	ts := TracesFromActions(perRank)
	base := platform.BordereauWithCores(procs, 1)
	grid := Grid{Coll: forkBenchColls()}
	run := func(fork bool) *Result {
		res, err := Run(context.Background(), &Config{
			Platform: base, Grid: grid, Traces: ts, Workers: 1, Fork: fork,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res
	}

	b.ResetTimer()
	var unforked, forked time.Duration
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		rs := run(false)
		t1 := time.Now()
		rf := run(true)
		t2 := time.Now()
		unforked += t1.Sub(t0)
		forked += t2.Sub(t1)
		for j := range rs.Scenarios {
			if rs.Scenarios[j].SimulatedTime != rf.Scenarios[j].SimulatedTime {
				b.Fatalf("scenario %d: unforked %g != forked %g", j,
					rs.Scenarios[j].SimulatedTime, rf.Scenarios[j].SimulatedTime)
			}
			if !rf.Scenarios[j].Forked {
				b.Fatalf("scenario %d did not fork", j)
			}
		}
	}
	b.StopTimer()
	if forked > 0 {
		b.ReportMetric(float64(unforked)/float64(forked), "speedup")
	}
	b.ReportMetric(float64(forked.Nanoseconds())/float64(b.N), "forked-ns/op")
}

// forkBenchColls spans the 8-way collective grid of BenchmarkSweepForkedPrefix:
// every allReduce algorithm crossed with both bcast trees.
func forkBenchColls() []coll.Config {
	var out []coll.Config
	for _, ar := range []string{"", "allReduce=binomial", "allReduce=rdb", "allReduce=ring"} {
		for _, bc := range []string{"", "bcast=binomial"} {
			spec := ar
			if bc != "" {
				if spec != "" {
					spec += ","
				}
				spec += bc
			}
			out = append(out, coll.MustParseSpec(spec))
		}
	}
	return out
}

// BenchmarkSweepSerialScenario pins the per-scenario cost of the engine
// itself (expansion, scaled instantiation, source creation) around one
// replay, so engine overhead regressions show up independently of pool
// scaling.
func BenchmarkSweepSerialScenario(b *testing.B) {
	const procs = 8
	prog, err := npb.LU(npb.LUConfig{Class: npb.ClassW, Procs: procs})
	if err != nil {
		b.Fatal(err)
	}
	perRank := make([][]trace.Action, procs)
	for r := 0; r < procs; r++ {
		if perRank[r], err = mpi.Record(r, procs, prog); err != nil {
			b.Fatal(err)
		}
	}
	ts := TracesFromActions(perRank)
	base := platform.BordereauWithCores(procs, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(context.Background(), &Config{Platform: base, Traces: ts, Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		if res.Scenarios[0].Err != "" {
			b.Fatal(res.Scenarios[0].Err)
		}
	}
}
