package sweep

import (
	"context"
	"runtime"
	"testing"
	"time"

	"tireplay/internal/mpi"
	"tireplay/internal/npb"
	"tireplay/internal/platform"
	"tireplay/internal/trace"
)

// BenchmarkSweepParallel is the CI scaling gate of the parallel sweep
// engine: each iteration replays the same 8-scenario what-if grid twice —
// once on a single worker, once on min(4, NumCPU) workers — over one shared
// LU trace, checks the scenario results agree exactly, and reports the
// wall-clock ratio as the "speedup" metric. cmd/benchdiff enforces a floor
// on that metric in CI (-floor 'BenchmarkSweepParallel:speedup=3' on the
// 4-core runner): per-scenario kernels are independent, so an 8-scenario
// sweep must scale near-linearly to 4 workers. ns/op covers both runs, so
// the usual regression threshold also guards the engine's serial overhead.
func BenchmarkSweepParallel(b *testing.B) {
	const procs = 8
	prog, err := npb.LU(npb.LUConfig{Class: npb.ClassA, Procs: procs})
	if err != nil {
		b.Fatal(err)
	}
	perRank := make([][]trace.Action, procs)
	for r := 0; r < procs; r++ {
		if perRank[r], err = mpi.Record(r, procs, prog); err != nil {
			b.Fatal(err)
		}
	}
	ts := TracesFromActions(perRank)
	base := platform.BordereauWithCores(procs, 1)
	grid := Grid{
		LatencyScale:   []float64{1, 2},
		BandwidthScale: []float64{0.5, 1},
		PowerScale:     []float64{1, 2},
	}
	workers := 4
	if n := runtime.NumCPU(); n < workers {
		workers = n
	}
	run := func(w int) *Result {
		res, err := Run(context.Background(), &Config{
			Platform: base, Grid: grid, Traces: ts, Workers: w,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res
	}

	b.ResetTimer()
	var serial, parallel time.Duration
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		rs := run(1)
		t1 := time.Now()
		rp := run(workers)
		t2 := time.Now()
		serial += t1.Sub(t0)
		parallel += t2.Sub(t1)
		for j := range rs.Scenarios {
			if rs.Scenarios[j].SimulatedTime != rp.Scenarios[j].SimulatedTime {
				b.Fatalf("scenario %d: serial %g != parallel %g", j,
					rs.Scenarios[j].SimulatedTime, rp.Scenarios[j].SimulatedTime)
			}
		}
	}
	b.StopTimer()
	if parallel > 0 {
		b.ReportMetric(float64(serial)/float64(parallel), "speedup")
	}
	b.ReportMetric(float64(parallel.Nanoseconds())/float64(b.N), "parallel-ns/op")
}

// BenchmarkSweepSerialScenario pins the per-scenario cost of the engine
// itself (expansion, scaled instantiation, source creation) around one
// replay, so engine overhead regressions show up independently of pool
// scaling.
func BenchmarkSweepSerialScenario(b *testing.B) {
	const procs = 8
	prog, err := npb.LU(npb.LUConfig{Class: npb.ClassW, Procs: procs})
	if err != nil {
		b.Fatal(err)
	}
	perRank := make([][]trace.Action, procs)
	for r := 0; r < procs; r++ {
		if perRank[r], err = mpi.Record(r, procs, prog); err != nil {
			b.Fatal(err)
		}
	}
	ts := TracesFromActions(perRank)
	base := platform.BordereauWithCores(procs, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(context.Background(), &Config{Platform: base, Traces: ts, Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		if res.Scenarios[0].Err != "" {
			b.Fatal(res.Scenarios[0].Err)
		}
	}
}
