package sweep

import (
	"bytes"
	"context"
	"runtime"
	"strings"
	"testing"

	"tireplay/internal/coll"
	"tireplay/internal/platform"
	"tireplay/internal/replay"
	"tireplay/internal/trace"
)

// forkSweepTrace shares a balanced compute+ring prefix across four ranks and
// diverges at the allReduce — the shape that lets a -coll/-ckpt grid fork.
const forkSweepTrace = `p0 compute 2e6
p0 send p1 1e5
p0 recv p3
p0 allReduce 1e5 2e6
p0 compute 1e6
p1 recv p0
p1 compute 3e6
p1 send p2 1e5
p1 allReduce 1e5 2e6
p1 compute 5e5
p2 recv p1
p2 compute 1e6
p2 send p3 1e5
p2 allReduce 1e5 2e6
p2 compute 2e6
p3 recv p2
p3 compute 4e6
p3 send p0 1e5
p3 allReduce 1e5 2e6
p3 compute 1e6
`

func forkTraces(t *testing.T, doc string, n int) *TraceSet {
	t.Helper()
	actions, err := trace.ParseAll(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	perRank := make([][]trace.Action, n)
	for _, a := range actions {
		perRank[a.Proc] = append(perRank[a.Proc], a)
	}
	return TracesFromActions(perRank)
}

// compareSweeps requires two sweep results to agree scenario by scenario:
// bit-equal makespans, equal action counts and byte-identical timed traces.
func compareSweeps(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if len(a.Scenarios) != len(b.Scenarios) {
		t.Fatalf("%s: %d vs %d scenarios", label, len(a.Scenarios), len(b.Scenarios))
	}
	for i := range a.Scenarios {
		sa, sb := &a.Scenarios[i], &b.Scenarios[i]
		if sa.Err != sb.Err {
			t.Fatalf("%s: scenario %d (%s): err %q vs %q", label, i, sa.Name, sa.Err, sb.Err)
		}
		if sa.SimulatedTime != sb.SimulatedTime {
			t.Errorf("%s: scenario %d (%s): makespan %.17g vs %.17g",
				label, i, sa.Name, sa.SimulatedTime, sb.SimulatedTime)
		}
		if sa.Actions != sb.Actions {
			t.Errorf("%s: scenario %d (%s): actions %d vs %d",
				label, i, sa.Name, sa.Actions, sb.Actions)
		}
		if !bytes.Equal(sa.TimedTrace, sb.TimedTrace) {
			t.Errorf("%s: scenario %d (%s): timed traces differ (%d vs %d bytes)",
				label, i, sa.Name, len(sa.TimedTrace), len(sb.TimedTrace))
		}
		if (sa.Resilience == nil) != (sb.Resilience == nil) {
			t.Errorf("%s: scenario %d: resilience presence differs", label, i)
		} else if sa.Resilience != nil && *sa.Resilience != *sb.Resilience {
			t.Errorf("%s: scenario %d: resilience %+v vs %+v", label, i, sa.Resilience, sb.Resilience)
		}
	}
}

func countForked(r *Result) int {
	n := 0
	for i := range r.Scenarios {
		if r.Scenarios[i].Forked {
			n++
		}
	}
	return n
}

// TestSweepForkMatchesScratch is the tentpole's acceptance gate at the sweep
// level: a -coll x -ckpt grid replayed with forking on must be bit-equal
// (makespans) and byte-identical (timed traces) to the same grid with forking
// off, at one worker and at NumCPU workers — and forking must actually
// engage, not silently fall back everywhere.
func TestSweepForkMatchesScratch(t *testing.T) {
	ts := forkTraces(t, forkSweepTrace, 4)
	ck, err := replay.ParseCkpt("60/5")
	if err != nil {
		t.Fatal(err)
	}
	grid := Grid{
		Coll: []coll.Config{{}, coll.MustParseSpec("binomial"), coll.MustParseSpec("allReduce=ring")},
		Ckpt: []*replay.Ckpt{nil, ck},
	}
	base := platform.BordereauWithCores(4, 1)
	run := func(fork bool, workers int) *Result {
		res, err := Run(context.Background(), &Config{
			Platform: base, Grid: grid, Traces: ts,
			Workers: workers, Timed: true, Profile: true, Fork: fork,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	workers := runtime.NumCPU()
	if workers < 4 {
		workers = 4
	}
	scratch := run(false, 1)
	forked1 := run(true, 1)
	forkedN := run(true, workers)
	compareSweeps(t, "fork=on vs fork=off", scratch, forked1)
	compareSweeps(t, "fork workers=1 vs N", forked1, forkedN)

	if n := countForked(scratch); n != 0 {
		t.Fatalf("fork=off marked %d scenarios forked", n)
	}
	// The ring allReduce members fall back (their round-0 exchange overlaps
	// the straggler's prefix — see the replay-level tests); the star and
	// binomial members must fork.
	if n := countForked(forked1); n < 2 {
		t.Fatalf("only %d scenarios forked; prefix sharing did not engage", n)
	}
	if f1, fn := countForked(forked1), countForked(forkedN); f1 != fn {
		t.Fatalf("forked count differs across worker counts: %d vs %d", f1, fn)
	}
	for i := range forked1.Scenarios {
		s := &forked1.Scenarios[i]
		if s.Forked && s.PrefixActions != 12 {
			t.Errorf("scenario %d (%s): prefix actions = %d, want 12", i, s.Name, s.PrefixActions)
		}
	}
}

// TestSweepForkTopoZoo runs the coll grid across generated topologies (one
// fork group per interconnect) and checks fork-on equals fork-off everywhere.
func TestSweepForkTopoZoo(t *testing.T) {
	ts := forkTraces(t, forkSweepTrace, 4)
	grid := Grid{
		Coll: []coll.Config{{}, coll.MustParseSpec("binomial")},
		Topo: []platform.TopoSpec{
			{Kind: "fat-tree", K: 4},
			{Kind: "torus", Dims: []int{2, 2}},
			{Kind: "dragonfly", Groups: 2, Routers: 2, HostsPer: 2},
		},
	}
	run := func(fork bool) *Result {
		res, err := Run(context.Background(), &Config{
			Grid: grid, Traces: ts, Workers: 2, Timed: true, Fork: fork,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	scratch, forked := run(false), run(true)
	compareSweeps(t, "topo zoo fork=on vs off", scratch, forked)
	if n := countForked(forked); n == 0 {
		t.Fatal("no scenario forked across the topology zoo")
	}
}

// TestSweepForkFaultAndCkptAxes: a degradation profile forks (the windows
// re-inject identically), a Ckpt-only divergence shares the full trace, and
// fail-stop cells without a checkpoint are excluded but still correct.
func TestSweepForkFaultAndCkptAxes(t *testing.T) {
	ts := forkTraces(t, forkSweepTrace, 4)
	deg, err := platform.ParseFaultSpec("cpu:0.5@0.0001-0.005")
	if err != nil {
		t.Fatal(err)
	}
	fail, err := platform.ParseFaultSpec("host:1@1e-3")
	if err != nil {
		t.Fatal(err)
	}
	ck, err := replay.ParseCkpt("60/5")
	if err != nil {
		t.Fatal(err)
	}
	grid := Grid{
		Faults: []*platform.FaultSpec{nil, deg, fail},
		Ckpt:   []*replay.Ckpt{nil, ck},
	}
	base := platform.BordereauWithCores(4, 1)
	run := func(fork bool) *Result {
		res, err := Run(context.Background(), &Config{
			Platform: base, Grid: grid, Traces: ts, Workers: 2, Timed: true, Fork: fork,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	scratch, forked := run(false), run(true)
	compareSweeps(t, "fault/ckpt fork=on vs off", scratch, forked)
	forkedBy := make(map[string]bool)
	for i := range forked.Scenarios {
		forkedBy[forked.Scenarios[i].Name] = forked.Scenarios[i].Forked
	}
	// The fault-free and degraded pairs diverge only in Ckpt: full-trace
	// sharing. The fail-stop abort cell must not fork; the fail-stop+ckpt
	// cell has no partner (its abort sibling is excluded), so it cannot
	// either.
	for name, want := range map[string]bool{
		"lat=1 bw=1 pow=1 fold=1":                                  true,
		"lat=1 bw=1 pow=1 fold=1 ckpt=60/5/0/0":                    true,
		"lat=1 bw=1 pow=1 fold=1 fault=host:1@0.001":               false,
		"lat=1 bw=1 pow=1 fold=1 fault=host:1@0.001 ckpt=60/5/0/0": false,
	} {
		got, seen := forkedBy[name]
		if !seen {
			t.Fatalf("scenario %q missing (have %v)", name, forkedBy)
		}
		if got != want {
			t.Errorf("scenario %q: forked=%v, want %v", name, got, want)
		}
	}
}

// TestSweepForkDisabledByRegistry: a custom registry turns forking off
// wholesale — handlers may keep state the planner cannot see.
func TestSweepForkDisabledByRegistry(t *testing.T) {
	ts := forkTraces(t, forkSweepTrace, 4)
	res, err := Run(context.Background(), &Config{
		Platform: platform.BordereauWithCores(4, 1),
		Grid:     Grid{Coll: []coll.Config{{}, coll.MustParseSpec("binomial")}},
		Traces:   ts,
		Registry: replay.Default(),
		Fork:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Scenarios {
		if res.Scenarios[i].Err != "" {
			t.Fatal(res.Scenarios[i].Err)
		}
		if res.Scenarios[i].Forked {
			t.Fatalf("scenario %d forked despite custom registry", i)
		}
	}
}

// TestSweepForkRenderTable: the prefix-reuse column appears exactly when some
// scenario forked.
func TestSweepForkRenderTable(t *testing.T) {
	ts := forkTraces(t, forkSweepTrace, 4)
	res, err := Run(context.Background(), &Config{
		Platform: platform.BordereauWithCores(4, 1),
		Grid:     Grid{Coll: []coll.Config{{}, coll.MustParseSpec("binomial")}},
		Traces:   ts,
		Fork:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.RenderTable(&buf)
	if !strings.Contains(buf.String(), "prefix") {
		t.Fatalf("table misses the prefix column:\n%s", buf.String())
	}
	var plain bytes.Buffer
	res2, err := Run(context.Background(), &Config{
		Platform: platform.BordereauWithCores(4, 1),
		Grid:     Grid{Coll: []coll.Config{{}, coll.MustParseSpec("binomial")}},
		Traces:   ts,
	})
	if err != nil {
		t.Fatal(err)
	}
	res2.RenderTable(&plain)
	if strings.Contains(plain.String(), "prefix") {
		t.Fatalf("unforked table grew a prefix column:\n%s", plain.String())
	}
}
