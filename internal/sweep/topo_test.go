package sweep

import (
	"bytes"
	"context"
	"runtime"
	"strings"
	"testing"

	"tireplay/internal/npb"
	"tireplay/internal/platform"
)

// TestParseTopoList covers the -topo axis syntax.
func TestParseTopoList(t *testing.T) {
	specs, err := ParseTopoList("fat-tree:4,torus:4x4x2,dragonfly:2x4x2")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 || specs[0].Kind != "fat-tree" || specs[1].Kind != "torus" ||
		specs[2].Kind != "dragonfly" {
		t.Fatalf("specs = %+v", specs)
	}
	if specs[1].String() != "torus:4x4x2" {
		t.Fatalf("round trip = %q", specs[1].String())
	}
	if got, err := ParseTopoList(""); got != nil || err != nil {
		t.Fatalf("empty list = %v, %v", got, err)
	}
	if _, err := ParseTopoList("fat-tree:4,mesh:3"); err == nil {
		t.Fatal("expected error for unknown topology kind")
	}
}

// TestSweepTopoAxisDeterministicAcrossWorkers is the acceptance gate of the
// topology axis: a `tisweep -topo fat-tree:...,torus:...,dragonfly:...`
// style multi-topology sweep replayed at workers=1 and workers=NumCPU must
// produce byte-identical per-scenario timed traces — and the axis must move
// the prediction, with different interconnects yielding different
// makespans. No base platform is needed when every cell sets a topology.
func TestSweepTopoAxisDeterministicAcrossWorkers(t *testing.T) {
	const procs = 8
	ts := luTraces(t, npb.ClassS, procs)
	grid := Grid{
		LatencyScale: []float64{1, 50},
		Topo: []platform.TopoSpec{
			{Kind: "fat-tree", K: 4},
			{Kind: "torus", Dims: []int{4, 4}},
			{Kind: "dragonfly", Groups: 2, Routers: 4, HostsPer: 2},
		},
	}
	if grid.Size() != 6 {
		t.Fatalf("grid expands to %d scenarios, want 6", grid.Size())
	}
	run := func(workers int) *Result {
		res, err := Run(context.Background(), &Config{
			Grid:    grid,
			Traces:  ts,
			Workers: workers,
			Timed:   true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	workers := runtime.NumCPU()
	if workers < 4 {
		workers = 4
	}
	serial := run(1)
	parallel := run(workers)
	for i := range serial.Scenarios {
		s, p := &serial.Scenarios[i], &parallel.Scenarios[i]
		if s.Err != "" || p.Err != "" {
			t.Fatalf("scenario %d failed: %q / %q", i, s.Err, p.Err)
		}
		if s.SimulatedTime != p.SimulatedTime || s.Actions != p.Actions {
			t.Fatalf("scenario %d (%s): serial %g/%d != parallel %g/%d",
				i, s.Name, s.SimulatedTime, s.Actions, p.SimulatedTime, p.Actions)
		}
		if !bytes.Equal(s.TimedTrace, p.TimedTrace) || len(s.TimedTrace) == 0 {
			t.Fatalf("scenario %d (%s): timed traces differ across worker counts "+
				"(%d vs %d bytes)", i, s.Name, len(s.TimedTrace), len(p.TimedTrace))
		}
	}
	// The interconnect must matter: at 50x latency the three topologies'
	// hop counts (up to 11 for the cross-pod fat-tree paths vs 3-5 inside a
	// dragonfly group) give distinct makespans.
	ft, to, df := serial.Scenarios[1].SimulatedTime, serial.Scenarios[3].SimulatedTime,
		serial.Scenarios[5].SimulatedTime
	if ft == to && to == df {
		t.Fatalf("all three topologies predict %g — the axis is inert", ft)
	}
	// Scenario labels carry the topo spec, and the JSON report round-trips
	// it as the spec string.
	if !strings.Contains(serial.Scenarios[1].Name, "topo=fat-tree:4") {
		t.Fatalf("scenario 1 name %q misses topo label", serial.Scenarios[1].Name)
	}
	var buf bytes.Buffer
	if err := serial.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"topo": "fat-tree:4"`, `"topo": "torus:4x4"`, `"topo": "dragonfly:2x4x2"`} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("JSON report misses %s:\n%s", want, buf.String())
		}
	}
}

// TestSweepTopoComposesWithHostAxis: the host-count axis (and an unused
// base platform) compose with a generated topology, and an empty topo axis
// still requires the base platform.
func TestSweepTopoComposesWithHostAxis(t *testing.T) {
	const procs = 4
	ts := luTraces(t, npb.ClassS, procs)
	res, err := Run(context.Background(), &Config{
		Platform: platform.BordereauWithCores(procs, 1),
		Grid: Grid{
			Hosts: []int{procs},
			Topo:  []platform.TopoSpec{{Kind: "torus", Dims: []int{2, 2}}},
		},
		Traces: ts,
		Timed:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenarios) != 1 {
		t.Fatalf("%d scenarios", len(res.Scenarios))
	}
	if res.Scenarios[0].Err != "" {
		t.Fatal(res.Scenarios[0].Err)
	}
	// And with the axis empty, the same config still needs the platform.
	if _, err := Run(context.Background(), &Config{
		Grid:   Grid{Topo: []platform.TopoSpec{}},
		Traces: ts,
	}); err == nil {
		t.Fatal("expected nil-platform error when a scenario has no topology")
	}
}
