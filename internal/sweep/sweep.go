// Package sweep is the parallel what-if engine: it expands a grid of
// hypothetical platform scenarios — latency/bandwidth/power scalings,
// deployment foldings, host counts — and replays one shared time-independent
// trace against every scenario, each on its own independent simulation
// kernel, across a bounded worker pool.
//
// This realises at scale the paper's core promise (Section 5: "a wide range
// of what-if scenarios can be explored without any modification of the
// simulator"): the trace is acquired once, parsed once, and shared read-only
// between workers; each scenario owns every piece of mutable state its
// replay touches (kernel, pools, interning tables, tracer), so results are
// byte-identical whatever the worker count. When the scenario platform
// decomposes into disjoint connected components and the trace's
// communication graph respects the partition, the engine additionally
// splits one scenario across several kernels (see partition.go).
package sweep

import (
	"fmt"
	"strconv"
	"strings"

	"tireplay/internal/coll"
	"tireplay/internal/platform"
	"tireplay/internal/replay"
	"tireplay/internal/synth"
)

// Grid spans the scenario space as a cross product of its axes. Empty axes
// default to the single identity value, so the zero Grid holds exactly one
// scenario: the unmodified platform.
type Grid struct {
	// LatencyScale multiplies every link latency of the base platform.
	LatencyScale []float64
	// BandwidthScale multiplies every link bandwidth.
	BandwidthScale []float64
	// PowerScale multiplies every host's per-core flop rate.
	PowerScale []float64
	// Fold are deployment folding factors: fold consecutive ranks share one
	// host (F-fold in Table 2 of the paper).
	Fold []int
	// Hosts are candidate host counts; each value deploys onto the first
	// that-many hosts of the platform (0 means all hosts).
	Hosts []int
	// Coll are collective-algorithm configurations (see internal/coll):
	// the same trace replayed under different collective decompositions —
	// the scenario-diversity axis the paper's fixed star could not span.
	Coll []coll.Config
	// Topo are generated topologies (see platform.ParseTopo): each entry
	// replaces the base platform with a fat-tree, torus or dragonfly
	// interconnect, so one sweep compares the same trace across network
	// architectures. The scale axes above compose with it (they multiply
	// the generator's base quantities).
	Topo []platform.TopoSpec
	// Faults are availability profiles (see platform.ParseFaultSpec): each
	// entry replays the trace with those fail-stop faults and degradation
	// windows injected. A nil entry is the fault-free cell. Fault host
	// indices address the scenario deployment's process slots.
	Faults []*platform.FaultSpec
	// Ckpt are checkpoint/restart protocols (see replay.ParseCkpt) crossed
	// with the fault axis: a nil entry replays faulted cells under the
	// abort policy (lost ranks reported as the scenario error), a non-nil
	// one rides through failures and reports the waste accounting.
	Ckpt []*replay.Ckpt
	// World are synthetic world sizes: each entry replays the sweep's
	// fitted model (Config.Synth) regenerated at that many ranks instead of
	// the recorded trace set, so "the application at 16k ranks on this
	// topology" is one more grid cell. 0 stands for the recorded world
	// (replaying Config.Traces); positive entries require Config.Synth.
	World []int
}

func orFloats(v []float64) []float64 {
	if len(v) == 0 {
		return []float64{1}
	}
	return v
}

func orInts(v []int, def int) []int {
	if len(v) == 0 {
		return []int{def}
	}
	return v
}

func orColl(v []coll.Config) []coll.Config {
	if len(v) == 0 {
		return []coll.Config{{}}
	}
	return v
}

// orTopos returns the topology axis as pointers, nil standing for the base
// platform when the axis is empty.
func orTopos(v []platform.TopoSpec) []*platform.TopoSpec {
	if len(v) == 0 {
		return []*platform.TopoSpec{nil}
	}
	out := make([]*platform.TopoSpec, len(v))
	for i := range v {
		spec := v[i]
		out[i] = &spec
	}
	return out
}

// orFaults returns the fault axis, nil standing for the fault-free cell
// when the axis is empty.
func orFaults(v []*platform.FaultSpec) []*platform.FaultSpec {
	if len(v) == 0 {
		return []*platform.FaultSpec{nil}
	}
	return v
}

// orCkpts returns the checkpoint axis, nil standing for the abort policy.
func orCkpts(v []*replay.Ckpt) []*replay.Ckpt {
	if len(v) == 0 {
		return []*replay.Ckpt{nil}
	}
	return v
}

// Size returns the number of scenarios the grid expands to.
func (g Grid) Size() int {
	return len(orFloats(g.LatencyScale)) * len(orFloats(g.BandwidthScale)) *
		len(orFloats(g.PowerScale)) * len(orInts(g.Fold, 1)) * len(orInts(g.Hosts, 0)) *
		len(orColl(g.Coll)) * len(orTopos(g.Topo)) *
		len(orFaults(g.Faults)) * len(orCkpts(g.Ckpt)) * len(orInts(g.World, 0))
}

// Scenario is one fully instantiated cell of the grid.
type Scenario struct {
	// Index is the scenario's position in the deterministic expansion
	// order; results are always reported in this order.
	Index          int     `json:"index"`
	LatencyScale   float64 `json:"latency_scale"`
	BandwidthScale float64 `json:"bandwidth_scale"`
	PowerScale     float64 `json:"power_scale"`
	Fold           int     `json:"fold"`
	// Hosts is the host-count limit (0 = every platform host).
	Hosts int `json:"hosts,omitempty"`
	// Coll is the scenario's collective-algorithm configuration; it always
	// marshals, as the -coll spec string ("default" when unset).
	Coll coll.Config `json:"coll"`
	// Topo, when non-nil, replaces the base platform with a generated
	// topology; it marshals as the -topo spec string.
	Topo *platform.TopoSpec `json:"topo,omitempty"`
	// Fault, when non-nil, is the availability profile injected into this
	// cell's replay; it marshals as the -fault spec string.
	Fault *platform.FaultSpec `json:"fault,omitempty"`
	// Ckpt, when non-nil, is the checkpoint/restart protocol of this cell;
	// it marshals as the -ckpt spec string.
	Ckpt *replay.Ckpt `json:"ckpt,omitempty"`
	// World, when positive, makes this a synthetic cell: its traces are
	// regenerated at this world size from the sweep's fitted model instead
	// of read from the recorded set.
	World int `json:"world,omitempty"`

	// synthGen is the resolved generator of a synthetic cell, shared
	// read-only by every worker touching the scenario (one generator per
	// distinct world; per-rank cursors are created per replay).
	synthGen *synth.Gen
}

// Name renders a compact scenario label, e.g. "lat=0.5 bw=2 pow=1 fold=2".
func (s Scenario) Name() string {
	var b strings.Builder
	fmt.Fprintf(&b, "lat=%s bw=%s pow=%s fold=%d",
		trimFloat(s.LatencyScale), trimFloat(s.BandwidthScale), trimFloat(s.PowerScale), s.Fold)
	if s.Hosts > 0 {
		fmt.Fprintf(&b, " hosts=%d", s.Hosts)
	}
	if !s.Coll.IsDefault() {
		fmt.Fprintf(&b, " coll=%s", s.Coll)
	}
	if s.Topo != nil {
		fmt.Fprintf(&b, " topo=%s", s.Topo)
	}
	if s.Fault != nil {
		fmt.Fprintf(&b, " fault=%s", s.Fault)
	}
	if s.Ckpt != nil {
		fmt.Fprintf(&b, " ckpt=%s", s.Ckpt)
	}
	if s.World > 0 {
		fmt.Fprintf(&b, " world=%d", s.World)
	}
	return b.String()
}

func trimFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// Expand lists the grid's scenarios in deterministic nested-axis order
// (world sizes outermost, then checkpoint protocols, faults, topologies,
// collectives, hosts, fold, power, bandwidth, latency innermost).
func (g Grid) Expand() []Scenario {
	lats := orFloats(g.LatencyScale)
	bws := orFloats(g.BandwidthScale)
	pows := orFloats(g.PowerScale)
	folds := orInts(g.Fold, 1)
	hosts := orInts(g.Hosts, 0)
	colls := orColl(g.Coll)
	topos := orTopos(g.Topo)
	faults := orFaults(g.Faults)
	ckpts := orCkpts(g.Ckpt)
	worlds := orInts(g.World, 0)
	out := make([]Scenario, 0, g.Size())
	for _, wd := range worlds {
		for _, ck := range ckpts {
			for _, fs := range faults {
				for _, tp := range topos {
					for _, cc := range colls {
						for _, h := range hosts {
							for _, f := range folds {
								for _, p := range pows {
									for _, bw := range bws {
										for _, lat := range lats {
											out = append(out, Scenario{
												Index:          len(out),
												LatencyScale:   lat,
												BandwidthScale: bw,
												PowerScale:     p,
												Fold:           f,
												Hosts:          h,
												Coll:           cc,
												Topo:           tp,
												Fault:          fs,
												Ckpt:           ck,
												World:          wd,
											})
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}

// ParseFloatList parses a comma-separated list of scale factors, the syntax
// of tisweep's grid flags ("0.5,1,2").
func ParseFloatList(s string) ([]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("sweep: bad factor %q in %q", part, s)
		}
		if v <= 0 {
			return nil, fmt.Errorf("sweep: factor %g in %q must be positive", v, s)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseCollList parses tisweep's -coll axis: semicolon-separated collective
// specs, each in the -coll syntax of internal/coll.ParseSpec
// ("linear;binomial;bcast=binomial,allReduce=ring").
func ParseCollList(s string) ([]coll.Config, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []coll.Config
	for _, part := range strings.Split(s, ";") {
		if strings.TrimSpace(part) == "" {
			// A trailing or doubled semicolon is not a scenario: skipping
			// it keeps the axis free of silent duplicate default cells.
			continue
		}
		c, err := coll.ParseSpec(part)
		if err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
		out = append(out, c)
	}
	return out, nil
}

// ParseTopoList parses tisweep's -topo axis: comma-separated topology specs
// in the platform.ParseTopo syntax
// ("fat-tree:4,torus:4x4x2,dragonfly:2x4x2").
func ParseTopoList(s string) ([]platform.TopoSpec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []platform.TopoSpec
	for _, part := range strings.Split(s, ",") {
		if strings.TrimSpace(part) == "" {
			continue
		}
		spec, err := platform.ParseTopo(part)
		if err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
		out = append(out, spec)
	}
	return out, nil
}

// ParseFaultList parses tisweep's -fault axis: semicolon-separated fault
// specs, each in the platform.ParseFaultSpec syntax
// ("none;host:1@5;hosts:25%@10,mtbf:3600"). "none" entries are kept as the
// fault-free cell, so the axis can compare faulted against clean runs.
func ParseFaultList(s string) ([]*platform.FaultSpec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []*platform.FaultSpec
	for _, part := range strings.Split(s, ";") {
		if strings.TrimSpace(part) == "" {
			continue
		}
		fs, err := platform.ParseFaultSpec(part)
		if err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
		out = append(out, fs)
	}
	return out, nil
}

// ParseCkptList parses tisweep's -ckpt axis: semicolon-separated
// checkpoint/restart specs, each in the replay.ParseCkpt syntax
// ("none;30/5;60/5/10/30"). "none" entries are kept as the no-protocol
// (abort policy) cell.
func ParseCkptList(s string) ([]*replay.Ckpt, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []*replay.Ckpt
	for _, part := range strings.Split(s, ";") {
		if strings.TrimSpace(part) == "" {
			continue
		}
		ck, err := replay.ParseCkpt(part)
		if err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
		out = append(out, ck)
	}
	return out, nil
}

// ParseWorldList parses tisweep's -world axis: comma-separated world sizes
// ("1024,4096,16384"). A 0 entry stands for the recorded world (replaying
// the -dir trace set), so one sweep can compare recorded against synthetic
// cells.
func ParseWorldList(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 0 {
			return nil, fmt.Errorf("sweep: bad world size %q in %q", part, s)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseIntList parses a comma-separated list of positive integers ("1,2,4").
func ParseIntList(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("sweep: bad count %q in %q", part, s)
		}
		out = append(out, v)
	}
	return out, nil
}
