package eventq

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyQueue(t *testing.T) {
	var q Queue
	if q.Len() != 0 {
		t.Fatalf("empty queue Len = %d", q.Len())
	}
	if q.Peek() != nil {
		t.Fatal("Peek on empty queue should be nil")
	}
	if q.Pop() != nil {
		t.Fatal("Pop on empty queue should be nil")
	}
}

func TestOrdering(t *testing.T) {
	var q Queue
	times := []float64{5, 1, 3, 2, 4, 0}
	for _, tm := range times {
		q.Push(tm, tm)
	}
	var got []float64
	for q.Len() > 0 {
		got = append(got, q.Pop().Time)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] > got[i] {
			t.Fatalf("out of order: %v", got)
		}
	}
	if len(got) != len(times) {
		t.Fatalf("popped %d events, pushed %d", len(got), len(times))
	}
}

func TestFIFOTieBreak(t *testing.T) {
	var q Queue
	for i := 0; i < 10; i++ {
		q.Push(1.0, i)
	}
	for i := 0; i < 10; i++ {
		ev := q.Pop()
		if ev.Payload.(int) != i {
			t.Fatalf("tie-break violated: got %v at position %d", ev.Payload, i)
		}
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	var q Queue
	q.Push(2, "b")
	q.Push(1, "a")
	if p := q.Peek(); p == nil || p.Payload != "a" {
		t.Fatalf("Peek = %v", p)
	}
	if q.Len() != 2 {
		t.Fatalf("Peek changed Len to %d", q.Len())
	}
	if p := q.Pop(); p.Payload != "a" {
		t.Fatalf("Pop after Peek = %v", p.Payload)
	}
}

func TestRemove(t *testing.T) {
	var q Queue
	a := q.Push(1, "a")
	b := q.Push(2, "b")
	c := q.Push(3, "c")
	if !q.Remove(b) {
		t.Fatal("Remove(b) failed")
	}
	if q.Remove(b) {
		t.Fatal("second Remove(b) should fail")
	}
	if q.Len() != 2 {
		t.Fatalf("Len after remove = %d", q.Len())
	}
	if p := q.Pop(); p != a {
		t.Fatalf("first pop = %v", p.Payload)
	}
	if p := q.Pop(); p != c {
		t.Fatalf("second pop = %v", p.Payload)
	}
	if q.Remove(nil) {
		t.Fatal("Remove(nil) should be false")
	}
}

func TestRemoveAfterPop(t *testing.T) {
	var q Queue
	a := q.Push(1, "a")
	q.Pop()
	if q.Remove(a) {
		t.Fatal("Remove of already-popped event should fail")
	}
}

func TestRemoveHead(t *testing.T) {
	var q Queue
	a := q.Push(1, "a")
	q.Push(2, "b")
	if !q.Remove(a) {
		t.Fatal("Remove(head) failed")
	}
	if p := q.Pop(); p.Payload != "b" {
		t.Fatalf("Pop after head removal = %v", p.Payload)
	}
}

func TestInterleavedPushPop(t *testing.T) {
	var q Queue
	rng := rand.New(rand.NewSource(42))
	var reference []float64
	for i := 0; i < 1000; i++ {
		if rng.Intn(3) == 0 && q.Len() > 0 {
			ev := q.Pop()
			sort.Float64s(reference)
			if ev.Time != reference[0] {
				t.Fatalf("pop %g, expected min %g", ev.Time, reference[0])
			}
			reference = reference[1:]
		} else {
			tm := rng.Float64() * 100
			q.Push(tm, nil)
			reference = append(reference, tm)
		}
	}
}

// Property: popping everything always yields a non-decreasing time sequence.
func TestHeapOrderProperty(t *testing.T) {
	f := func(times []float64) bool {
		var q Queue
		for _, tm := range times {
			q.Push(tm, nil)
		}
		prev := math.Inf(-1)
		for q.Len() > 0 {
			ev := q.Pop()
			if ev.Time < prev {
				return false
			}
			prev = ev.Time
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Len is consistent under any push/remove interleaving.
func TestLenConsistencyProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		var q Queue
		var live []*Event
		for _, op := range ops {
			if op%3 == 0 && len(live) > 0 {
				q.Remove(live[0])
				live = live[1:]
			} else {
				live = append(live, q.Push(float64(op), nil))
			}
			if q.Len() != len(live) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUpdateMovesEventInPlace(t *testing.T) {
	var q Queue
	a := q.Push(1, "a")
	b := q.Push(2, "b")
	c := q.Push(3, "c")
	if !q.Update(b, 0.5) {
		t.Fatal("Update on pending event returned false")
	}
	if q.Len() != 3 {
		t.Fatalf("Len = %d after Update, want 3", q.Len())
	}
	var got []string
	for ev := q.Pop(); ev != nil; ev = q.Pop() {
		got = append(got, ev.Payload.(string))
	}
	want := []string{"b", "a", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
	if q.Update(a, 9) || q.Update(c, 9) {
		t.Fatal("Update on popped event must return false")
	}
	if q.Update(nil, 9) {
		t.Fatal("Update(nil) must return false")
	}
}

func TestUpdateMatchesRemovePushTieBreak(t *testing.T) {
	// An updated event is re-sequenced: at an equal due time it fires after
	// events that were already scheduled there, exactly as if it had been
	// removed and re-pushed.
	var q Queue
	early := q.Push(1, "updated")
	q.Push(5, "resident")
	if !q.Update(early, 5) {
		t.Fatal("Update returned false")
	}
	if first := q.Pop(); first.Payload.(string) != "resident" {
		t.Fatalf("first pop = %q, want resident (updated event must re-sequence)", first.Payload)
	}
	if second := q.Pop(); second.Payload.(string) != "updated" {
		t.Fatalf("second pop = %q, want updated", second.Payload)
	}
}

func TestUpdateRandomisedAgainstRemovePush(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var qa, qb Queue
	evA := make([]*Event, 0, 64)
	evB := make([]*Event, 0, 64)
	for i := 0; i < 64; i++ {
		tm := rng.Float64() * 100
		evA = append(evA, qa.Push(tm, i))
		evB = append(evB, qb.Push(tm, i))
	}
	for step := 0; step < 500; step++ {
		i := rng.Intn(len(evA))
		tm := rng.Float64() * 100
		okA := qa.Update(evA[i], tm)
		okB := qb.Remove(evB[i])
		if okB {
			qb.Recycle(evB[i])
			evB[i] = qb.Push(tm, i)
		}
		if okA != okB {
			t.Fatalf("step %d: Update=%v Remove=%v", step, okA, okB)
		}
	}
	for {
		a, b := qa.Pop(), qb.Pop()
		if a == nil || b == nil {
			if a != b {
				t.Fatal("queues drained at different lengths")
			}
			return
		}
		if a.Time != b.Time || a.Payload.(int) != b.Payload.(int) {
			t.Fatalf("pop mismatch: (%g,%v) vs (%g,%v)", a.Time, a.Payload, b.Time, b.Payload)
		}
	}
}

func TestEachVisitsEveryPendingEvent(t *testing.T) {
	var q Queue
	var evs []*Event
	for i := 0; i < 10; i++ {
		evs = append(evs, q.Push(float64(i), i))
	}
	q.Remove(evs[3])
	q.Pop() // removes time 0
	seen := make(map[int]bool)
	q.Each(func(ev *Event) {
		seen[ev.Payload.(int)] = true
	})
	if len(seen) != 8 {
		t.Fatalf("Each visited %d events, want 8", len(seen))
	}
	for i := 0; i < 10; i++ {
		want := i != 0 && i != 3
		if seen[i] != want {
			t.Errorf("payload %d visited=%v, want %v", i, seen[i], want)
		}
	}
}
