package eventq

import "testing"

// TestRecycleReusesEvents verifies that recycled events are handed back by
// Push and that a recycled handle cannot disturb the queue.
func TestRecycleReusesEvents(t *testing.T) {
	var q Queue
	ev := q.Push(1, "a")
	if got := q.Pop(); got != ev {
		t.Fatalf("popped %v", got)
	}
	q.Recycle(ev)
	ev2 := q.Push(2, "b")
	if ev2 != ev {
		t.Fatal("push did not reuse the recycled event")
	}
	// Recycling a pending event must be refused: the queue still owns it.
	q.Recycle(ev2)
	if q.Len() != 1 || q.Peek() != ev2 {
		t.Fatal("recycling a pending event corrupted the queue")
	}
	if got := q.Pop(); got != ev2 || got.Payload != "b" {
		t.Fatalf("popped %+v", got)
	}
	// Removed events can be recycled too.
	ev3 := q.Push(3, "c")
	if !q.Remove(ev3) {
		t.Fatal("remove failed")
	}
	q.Recycle(ev3)
	if ev4 := q.Push(4, "d"); ev4 != ev3 {
		t.Fatal("push did not reuse the removed event")
	}
}

// TestPushPopZeroAllocs guards the allocation-free steady state of the
// queue: once the heap and free list are warm, schedule/fire cycles of
// replay-like shape must not touch the garbage collector.
func TestPushPopZeroAllocs(t *testing.T) {
	var q Queue
	// Pre-boxed payload: the kernel passes *activity pointers, which do not
	// allocate on conversion to any.
	var payload any = "p"
	// Warm up heap capacity and the free list.
	evs := make([]*Event, 64)
	for i := range evs {
		evs[i] = q.Push(float64(i), payload)
	}
	for range evs {
		q.Recycle(q.Pop())
	}
	n := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			q.Recycle(q.Pop())
			q.Push(float64(i), payload)
		}
	})
	if n != 0 {
		t.Fatalf("push/pop allocates %v times per run", n)
	}
}

// TestPushPopRescheduleZeroAllocs mirrors the kernel's reshare pattern:
// remove + recycle + push, the hottest queue cycle.
func TestPushPopRescheduleZeroAllocs(t *testing.T) {
	var q Queue
	evs := make([]*Event, 32)
	for i := range evs {
		evs[i] = q.Push(float64(i), nil)
	}
	n := testing.AllocsPerRun(100, func() {
		for i := range evs {
			if q.Remove(evs[i]) {
				q.Recycle(evs[i])
			}
			evs[i] = q.Push(float64(i), nil)
		}
	})
	if n != 0 {
		t.Fatalf("reschedule cycle allocates %v times per run", n)
	}
}
