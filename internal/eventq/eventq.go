// Package eventq implements the time-ordered event queue at the heart of the
// discrete-event simulation kernel. It is a binary min-heap keyed on the
// event's due time with FIFO tie-breaking, so that events scheduled for the
// same instant fire in scheduling order — a property the replay tool relies
// on for deterministic simulations.
package eventq

// Event is an entry in the queue: a payload due at a simulated time.
type Event struct {
	Time    float64 // due time in simulated seconds
	Payload any     // caller-defined; the kernel stores *activity values

	seq int // insertion sequence number, breaks Time ties FIFO
	pos int // current heap index, -1 once popped or removed
}

// Queue is a time-ordered event queue. The zero value is ready to use.
type Queue struct {
	heap []*Event
	seq  int
	free []*Event // recycled events reused by Push
}

// Len reports the number of pending events.
func (q *Queue) Len() int { return len(q.heap) }

// Push schedules payload at time t and returns the event handle, which can
// later be passed to Remove for cancellation. Events previously returned to
// the queue with Recycle are reused, so steady-state push/pop cycles perform
// no heap allocation.
func (q *Queue) Push(t float64, payload any) *Event {
	var ev *Event
	if n := len(q.free); n > 0 {
		ev = q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
	} else {
		ev = new(Event)
	}
	ev.Time = t
	ev.Payload = payload
	ev.seq = q.seq
	ev.pos = len(q.heap)
	q.seq++
	q.heap = append(q.heap, ev)
	q.up(len(q.heap) - 1)
	return ev
}

// Peek returns the earliest event without removing it, or nil when empty.
func (q *Queue) Peek() *Event {
	if len(q.heap) == 0 {
		return nil
	}
	return q.heap[0]
}

// Pop removes and returns the earliest event, or nil when empty.
func (q *Queue) Pop() *Event {
	if len(q.heap) == 0 {
		return nil
	}
	top := q.heap[0]
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.heap[0].pos = 0
	q.heap[last] = nil
	q.heap = q.heap[:last]
	if len(q.heap) > 0 {
		q.down(0)
	}
	top.pos = -1
	return top
}

// Update moves a pending event to the new due time t in place, sifting it
// through the heap in O(log n) without releasing the handle — cheaper than a
// Remove/Recycle/Push cycle because the event keeps its slot, and the kernel
// reschedules completion events on every bandwidth reshare. The event is
// re-sequenced as if freshly pushed, so ties at the same due time fire in
// reschedule order — exactly the Remove+Push semantics, minus the free-list
// round-trip. It returns false (and does nothing) if the event has already
// fired or been removed.
func (q *Queue) Update(ev *Event, t float64) bool {
	if ev == nil || ev.pos < 0 || ev.pos >= len(q.heap) || q.heap[ev.pos] != ev {
		return false
	}
	ev.Time = t
	ev.seq = q.seq
	q.seq++
	q.down(ev.pos)
	q.up(ev.pos)
	return true
}

// Remove cancels a previously pushed event in O(log n) using the event's
// heap index — the kernel reschedules every active flow's completion on
// each bandwidth reshare, so this is a hot path. It is a no-op if the event
// has already fired or been removed.
func (q *Queue) Remove(ev *Event) bool {
	if ev == nil || ev.pos < 0 || ev.pos >= len(q.heap) || q.heap[ev.pos] != ev {
		return false
	}
	q.removeAt(ev.pos)
	ev.pos = -1
	return true
}

// Each calls fn for every pending event, in heap order. The order is
// deterministic for a given operation history but otherwise unspecified;
// callers needing time order must sort. fn must not push, remove or update
// events — collect first, mutate after. The kernel's fault injector uses it
// to find every live activity touching a failed resource (each one owns
// exactly one pending completion event).
func (q *Queue) Each(fn func(*Event)) {
	for _, ev := range q.heap {
		fn(ev)
	}
}

// Recycle returns a fired or removed event to the queue's free list for
// reuse by a later Push. The handle must not be used afterwards. Recycling
// an event still pending in the queue is a no-op (the queue owns it).
func (q *Queue) Recycle(ev *Event) {
	if ev == nil || ev.pos >= 0 {
		return
	}
	ev.Payload = nil
	q.free = append(q.free, ev)
}

// Reset drains the queue, moving every pending event to the free list and
// rewinding the sequence counter to zero, so the next Push behaves exactly as
// on a fresh queue. Handles of previously pending events must not be used
// afterwards. The kernel's Restore uses it to rewind a quiesced simulation to
// the state of a newly built one without giving up pooled storage.
func (q *Queue) Reset() {
	for i, ev := range q.heap {
		ev.pos = -1
		ev.Payload = nil
		q.free = append(q.free, ev)
		q.heap[i] = nil
	}
	q.heap = q.heap[:0]
	q.seq = 0
}

func (q *Queue) removeAt(i int) {
	last := len(q.heap) - 1
	if i != last {
		q.heap[i] = q.heap[last]
		q.heap[i].pos = i
	}
	q.heap[last] = nil
	q.heap = q.heap[:last]
	if i < len(q.heap) {
		q.down(i)
		q.up(i)
	}
}

// less orders by time, then by insertion sequence for same-time FIFO.
func (q *Queue) less(i, j int) bool {
	a, b := q.heap[i], q.heap[j]
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	return a.seq < b.seq
}

// swap exchanges two heap slots, keeping the position index coherent.
func (q *Queue) swap(i, j int) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.heap[i].pos = i
	q.heap[j].pos = j
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *Queue) down(i int) {
	n := len(q.heap)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		smallest := left
		if right := left + 1; right < n && q.less(right, left) {
			smallest = right
		}
		if !q.less(smallest, i) {
			break
		}
		q.swap(i, smallest)
		i = smallest
	}
}
