// Package tireplay_bench holds the benchmark harness regenerating the
// paper's tables and figures (one benchmark per table/figure, per
// DESIGN.md) plus the ablation benchmarks for the design choices the
// framework makes. Benchmarks run the quick scale by default; the
// cmd/experiments tool runs the paper scale.
//
// # Simulation fast-path benchmarks
//
// The kernel- and codec-level benchmarks live next to the code they
// measure: BenchmarkMaxMinSolve and BenchmarkKernelReshare in
// internal/simx, BenchmarkScanBytes and BenchmarkParseLine in
// internal/trace. Reference numbers on the CI-class machine (Intel Xeon
// @2.70GHz, go1.24) before and after the fast-path kernel rework (partial
// max-min resharing, intrusive flow/compute sets, pooled activities and
// events, byte-level trace scanning); medians of interleaved
// same-conditions runs of the identical benchmark bodies:
//
//	benchmark                     before              after            speedup
//	MaxMinSolve/flows-8         1115 ns/op  0 allocs   311 ns/op  0 allocs  3.6x
//	MaxMinSolve/flows-64       20357 ns/op  3 allocs  4982 ns/op  0 allocs  4.1x
//	MaxMinSolve/flows-512      78214 ns/op  3 allocs 14364 ns/op  0 allocs  5.3x
//	KernelReshare/hosts-8       2.15 ms/op  7458 all  0.92 ms/op  1877 all  2.4x
//	KernelReshare/hosts-32     19.50 ms/op 57756 all  8.95 ms/op  7326 all  2.2x
//	ScanBytes (50k actions)    12.85 ms/op  2/line    5.57 ms/op  0/line   2.3x
//	                           87.2 MB/s             201.2 MB/s
//
// The replay-level effect shows up in BenchmarkFigure9ReplayTime below
// (actions/s) without any change to the SimulatedTime metrics the paper's
// figures report.
//
// The zero-allocation steady-state PR (lazy rate-epoch rescheduling,
// interned mailbox IDs, pooled Comm handles, mmap'd binary traces) extends
// the table: KernelReshare dropped a further 1.3x in time and 3.5x in
// allocations, and the new BenchmarkReplaySteadyState (internal/replay)
// pins the post/match/complete cycle at 0 allocs/op — enforced by the CI
// bench job via cmd/benchdiff against BENCH_baseline.json; the measured
// before/after table lives in ROADMAP.md.
package tireplay_bench

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"tireplay/internal/acquisition"
	"tireplay/internal/convert"
	"tireplay/internal/experiments"
	"tireplay/internal/gather"
	"tireplay/internal/mpi"
	"tireplay/internal/npb"
	"tireplay/internal/platform"
	"tireplay/internal/replay"
	"tireplay/internal/smpi"
	"tireplay/internal/tau"
	"tireplay/internal/trace"
)

// benchClass and benchProcs size the benchmark instances.
var (
	benchClass = npb.ClassW
	benchProcs = 8
)

// luProgram builds the benchmark's LU skeleton.
func luProgram(b *testing.B, class npb.Class, procs int) mpi.Program {
	b.Helper()
	prog, err := npb.LU(npb.LUConfig{Class: class, Procs: procs})
	if err != nil {
		b.Fatal(err)
	}
	return prog
}

// recordedTrace generates the per-rank TI trace of an instance.
func recordedTrace(b *testing.B, class npb.Class, procs int) [][]trace.Action {
	b.Helper()
	prog := luProgram(b, class, procs)
	perRank := make([][]trace.Action, procs)
	for r := 0; r < procs; r++ {
		var err error
		perRank[r], err = mpi.Record(r, procs, prog)
		if err != nil {
			b.Fatal(err)
		}
	}
	return perRank
}

// replayTarget builds the regular-mode replay platform.
func replayTarget(b *testing.B, procs int) (*platform.Build, *platform.Deployment) {
	b.Helper()
	bd, err := platform.BuildBordereauWithCores(procs, 1)
	if err != nil {
		b.Fatal(err)
	}
	d, err := platform.RoundRobin(bd.HostNames, procs, 1)
	if err != nil {
		b.Fatal(err)
	}
	return bd, d
}

// BenchmarkFigure7Acquisition regenerates one Figure 7 bar: a complete
// Regular-mode acquisition (instrumented simulated execution, real
// extraction, modelled gathering).
func BenchmarkFigure7Acquisition(b *testing.B) {
	prog := luProgram(b, benchClass, benchProcs)
	for i := 0; i < b.N; i++ {
		dir, err := os.MkdirTemp("", "bench-fig7-")
		if err != nil {
			b.Fatal(err)
		}
		camp := &acquisition.Campaign{
			Procs: benchProcs, Program: prog, OverheadPerEvent: 1.5e-6,
		}
		rep, err := camp.Run(dir, acquisition.Regular(), false)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rep.TotalAcquisitionTime(), "sim-acq-s")
		}
		os.RemoveAll(dir)
	}
}

// BenchmarkTable2Modes regenerates Table 2 cells: the instrumented
// execution time under each acquisition mode.
func BenchmarkTable2Modes(b *testing.B) {
	prog := luProgram(b, benchClass, benchProcs)
	for _, m := range []acquisition.Mode{
		acquisition.Regular(),
		acquisition.Folding(4),
		acquisition.Scattering(2),
		acquisition.ScatterFold(2, 4),
	} {
		b.Run(m.Name(), func(b *testing.B) {
			camp := &acquisition.Campaign{
				Procs: benchProcs, Program: prog, OverheadPerEvent: 1.5e-6,
			}
			for i := 0; i < b.N; i++ {
				secs, err := camp.InstrumentedTime(m)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(secs, "sim-exec-s")
				}
			}
		})
	}
}

// BenchmarkTable3TraceSizes regenerates a Table 3 row: writing the TAU and
// time-independent encodings of one instance and comparing sizes.
func BenchmarkTable3TraceSizes(b *testing.B) {
	prog := luProgram(b, benchClass, benchProcs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dir, err := os.MkdirTemp("", "bench-t3-")
		if err != nil {
			b.Fatal(err)
		}
		_, files, err := tau.AcquireLive(dir, mpi.LiveConfig{Procs: benchProcs}, 0, prog)
		if err != nil {
			b.Fatal(err)
		}
		perRank, err := convert.ExtractDir(dir, benchProcs)
		if err != nil {
			b.Fatal(err)
		}
		var ti bytes.Buffer
		if err := trace.WriteAll(&ti, convert.Flatten(perRank)); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(ti.Len())/(1<<20), "ti-MiB")
			b.ReportMetric(float64(files.TraceBytes)/float64(ti.Len()), "tau/ti")
		}
		os.RemoveAll(dir)
	}
}

// BenchmarkFigure8Replay regenerates one Figure 8 point: replaying a trace
// on the calibrated platform.
func BenchmarkFigure8Replay(b *testing.B) {
	perRank := recordedTrace(b, benchClass, benchProcs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bd, d := replayTarget(b, benchProcs)
		res, err := replay.RunActions(bd, d, replay.Config{Model: smpi.Default()}, perRank)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.SimulatedTime, "sim-s")
		}
	}
}

// BenchmarkFigure9ReplayTime regenerates Figure 9: the wall-clock time
// needed to replay traces of growing process counts.
func BenchmarkFigure9ReplayTime(b *testing.B) {
	for _, procs := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("procs-%d", procs), func(b *testing.B) {
			perRank := recordedTrace(b, benchClass, procs)
			var actions int64
			for _, acts := range perRank {
				actions += int64(len(acts))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bd, d := replayTarget(b, procs)
				res, err := replay.RunActions(bd, d, replay.Config{}, perRank)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(res.Actions), "actions")
				}
			}
			b.ReportMetric(float64(actions)/b.Elapsed().Seconds()/float64(b.N), "actions/s")
		})
	}
}

// BenchmarkLargeTraceGeneration regenerates the Section 6.5 measurement
// machinery: streaming the exact trace of one class D / 1024 rank.
func BenchmarkLargeTraceGeneration(b *testing.B) {
	prog, err := npb.LU(npb.LUConfig{Class: npb.ClassD, Procs: 1024})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var count int64
		err := mpi.RecordStream(512, 1024, prog, func(a trace.Action) error {
			count++
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(count), "actions")
		}
	}
}

// BenchmarkInvarianceExtraction regenerates the Section 6.2 check: one
// folded acquisition plus extraction, whose trace must match Regular mode.
func BenchmarkInvarianceExtraction(b *testing.B) {
	prog := luProgram(b, npb.ClassS, benchProcs)
	for i := 0; i < b.N; i++ {
		dir, err := os.MkdirTemp("", "bench-inv-")
		if err != nil {
			b.Fatal(err)
		}
		camp := &acquisition.Campaign{Procs: benchProcs, Program: prog}
		if _, err := camp.Run(dir, acquisition.Folding(4), true); err != nil {
			b.Fatal(err)
		}
		if _, err := convert.ExtractDir(dir, benchProcs); err != nil {
			b.Fatal(err)
		}
		os.RemoveAll(dir)
	}
}

// --- Ablation benchmarks (design choices called out in DESIGN.md) ---

// BenchmarkAblationNetworkModel compares the piece-wise linear MPI model
// against a plain affine network model on the same replay.
func BenchmarkAblationNetworkModel(b *testing.B) {
	perRank := recordedTrace(b, benchClass, benchProcs)
	for _, tc := range []struct {
		name  string
		model *smpi.Model
	}{
		{"piecewise", smpi.Default()},
		{"affine", smpi.Identity()},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bd, d := replayTarget(b, benchProcs)
				res, err := replay.RunActions(bd, d, replay.Config{Model: tc.model}, perRank)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(res.SimulatedTime, "sim-s")
				}
			}
		})
	}
}

// BenchmarkAblationCollectives compares point-to-point decomposition of
// collectives (the paper's choice) against a monolithic analytic model.
func BenchmarkAblationCollectives(b *testing.B) {
	perRank := recordedTrace(b, benchClass, benchProcs)
	monolithic := replay.Default()
	monolithic.Register("allReduce", func(p *replay.Proc, a trace.Action) error {
		// Analytic model: log2(n) latency steps plus the reduction work.
		p.Sim.Sleep(3 * 16.67e-6 * 3) // ~log2(8) steps
		if a.Volume2 > 0 {
			p.Sim.Execute(a.Volume2)
		}
		return nil
	})
	for _, tc := range []struct {
		name string
		reg  *replay.Registry
	}{
		{"point-to-point", replay.Default()},
		{"monolithic", monolithic},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bd, d := replayTarget(b, benchProcs)
				res, err := replay.RunActions(bd, d, replay.Config{Registry: tc.reg}, perRank)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(res.SimulatedTime, "sim-s")
				}
			}
		})
	}
}

// BenchmarkAblationCodec compares the textual format, the binary codec of
// the paper's future work, and the gzip container.
func BenchmarkAblationCodec(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	actions := make([]trace.Action, 100_000)
	for i := range actions {
		switch rng.Intn(3) {
		case 0:
			actions[i] = trace.Action{Proc: rng.Intn(64), Type: trace.Compute, Peer: -1, Volume: float64(rng.Intn(1e6))}
		case 1:
			actions[i] = trace.Action{Proc: rng.Intn(64), Type: trace.Send, Peer: rng.Intn(64), Volume: float64(rng.Intn(1e6))}
		default:
			actions[i] = trace.Action{Proc: rng.Intn(64), Type: trace.Recv, Peer: rng.Intn(64)}
		}
	}
	b.Run("text", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := trace.WriteAll(&buf, actions); err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(float64(buf.Len())/float64(len(actions)), "B/action")
			}
		}
	})
	b.Run("binary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := trace.EncodeBinary(&buf, actions); err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(float64(buf.Len())/float64(len(actions)), "B/action")
			}
		}
	})
}

// BenchmarkAblationGatherArity evaluates the K-nomial gathering tree for
// several arities, the tunable the paper's gathering script exposes.
func BenchmarkAblationGatherArity(b *testing.B) {
	sizes := make([]float64, 1024)
	for i := range sizes {
		sizes[i] = 30e6
	}
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("k-%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cost, err := gather.Cost(sizes, k, platform.GigaEthernetBw, 3*platform.ClusterLatency)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(cost, "sim-s")
				}
			}
		})
	}
}

// BenchmarkAblationCalibration compares single-average flop-rate
// calibration (the paper's procedure) against per-phase awareness, the
// improvement hinted at in Section 6.4.
func BenchmarkAblationCalibration(b *testing.B) {
	cfg := experiments.Quick()
	cfg.Classes = []npb.Class{npb.ClassS}
	cfg.Procs = []int{benchProcs}
	cfg.CalibrationRuns = 2
	for i := 0; i < b.N; i++ {
		res, err := experiments.Suite(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(res.Fig8) > 0 {
			b.ReportMetric(res.Fig8[0].ErrorPct(), "err-%")
		}
	}
}
