// faults is the walkthrough of the resilience axis: it acquires one LU
// trace, measures its fault-free makespan, then sweeps a checkpoint
// interval x failure-seed grid against an exponential fail-stop process
// (mtbf) under the checkpoint/restart waste model — and checks that the
// interval the table favours brackets Daly's analytic optimum
// sqrt(2*cost*mtbf), which replay.DalyInterval computes in closed form.
//
// Run with: go run ./examples/faults
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"os"

	"tireplay/internal/mpi"
	"tireplay/internal/npb"
	"tireplay/internal/platform"
	"tireplay/internal/replay"
	"tireplay/internal/sweep"
	"tireplay/internal/trace"
	"tireplay/internal/units"
)

const procs = 8

func main() {
	// 1. Acquire one time-independent trace and split it into the
	// per-process files of Section 5 (SG_process<r>.trace).
	prog, err := npb.LU(npb.LUConfig{Class: npb.ClassA, Procs: procs})
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "tifaults-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	var all []trace.Action
	for r := 0; r < procs; r++ {
		acts, err := mpi.Record(r, procs, prog)
		if err != nil {
			log.Fatal(err)
		}
		all = append(all, acts...)
	}
	if _, err := trace.WriteSplit(dir, procs, all); err != nil {
		log.Fatal(err)
	}
	traces, err := sweep.LoadDir(dir, procs)
	if err != nil {
		log.Fatal(err)
	}
	defer traces.Close()

	// 2. Fault-free reference: an empty grid is the single base scenario.
	base := &sweep.Config{
		Platform: platform.BordereauWithCores(procs, 1),
		Traces:   traces,
	}
	ref, err := sweep.Run(context.Background(), base)
	if err != nil {
		log.Fatal(err)
	}
	M := ref.Scenarios[0].SimulatedTime
	fmt.Printf("fault-free makespan: %s\n", units.FormatSeconds(M))

	// 3. Size the failure process from the makespan: an MTBF of M/25
	// strikes the run ~25 times, enough for the waste curve's convexity
	// to dominate the luck of any single failure stream. The checkpoint
	// cost is 1/200 of the MTBF; Daly's optimum then sits at exactly
	// 10% of the MTBF — well inside the swept interval range.
	mtbf := M / 25
	cost := mtbf / 200
	daly := replay.DalyInterval(cost, mtbf)
	fmt.Printf("mtbf %s, checkpoint cost %s -> Daly interval %s\n\n",
		units.FormatSeconds(mtbf), units.FormatSeconds(cost),
		units.FormatSeconds(daly))

	// 4. The grid: checkpoint intervals bracketing the optimum, crossed
	// with three independent failure streams (same MTBF, different
	// seeds) to average the Poisson noise out.
	factors := []float64{0.25, 0.5, 1, 2, 4}
	var ckpts []*replay.Ckpt
	for _, f := range factors {
		ckpts = append(ckpts, &replay.Ckpt{Interval: f * daly, Cost: cost})
	}
	seeds := []uint64{1, 2, 3}
	var faults []*platform.FaultSpec
	for _, s := range seeds {
		fs, err := platform.ParseFaultSpec(fmt.Sprintf("mtbf:%g,seed:%d", mtbf, s))
		if err != nil {
			log.Fatal(err)
		}
		faults = append(faults, fs)
	}
	cfg := &sweep.Config{
		Platform: platform.BordereauWithCores(procs, 1),
		Grid:     sweep.Grid{Faults: faults, Ckpt: ckpts},
		Traces:   traces,
	}
	res, err := sweep.Run(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	res.RenderTable(os.Stdout)

	// 5. Average the effective makespan per interval across the seeds;
	// the minimum should land on (or next to) the Daly interval.
	type row struct{ interval, effective float64 }
	avg := make([]row, len(factors))
	for i := range res.Scenarios {
		sc := &res.Scenarios[i]
		if sc.Err != "" {
			log.Fatalf("scenario %s failed: %s", sc.Name, sc.Err)
		}
		for j, ck := range ckpts {
			if sc.Ckpt == ck {
				avg[j].interval = ck.Interval
				avg[j].effective += sc.Resilience.Effective / float64(len(seeds))
			}
		}
	}
	fmt.Printf("\n%14s | %14s | %s\n", "interval", "avg effective", "vs Daly")
	best := 0
	for j, r := range avg {
		if r.effective < avg[best].effective {
			best = j
		}
	}
	for j, r := range avg {
		mark := ""
		if j == best {
			mark = "  <- minimum"
		}
		fmt.Printf("%14s | %14s | %5.2fx%s\n",
			units.FormatSeconds(r.interval), units.FormatSeconds(r.effective),
			r.interval/daly, mark)
	}
	if ratio := avg[best].interval / daly; math.Abs(math.Log2(ratio)) > 1.01 {
		log.Fatalf("empirical optimum %s is more than one grid step from Daly's %s",
			units.FormatSeconds(avg[best].interval), units.FormatSeconds(daly))
	}
	fmt.Printf("\nthe empirical optimum brackets Daly's sqrt(2*cost*mtbf) = %s\n",
		units.FormatSeconds(daly))
}
