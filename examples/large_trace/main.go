// large_trace reproduces the Section 6.5 study: acquiring the trace of a
// class D LU instance on 1,024 processes — almost three times more
// processes than the bordereau cluster has cores — using 32 nodes and a
// folding factor of 8. The action counts are computed exactly from the
// benchmark structure; trace sizes are measured on a sample of ranks and
// extended by the exact counts (pass -exact to stream every rank).
//
// Run with: go run ./examples/large_trace [-exact]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"tireplay/internal/experiments"
	"tireplay/internal/npb"
)

func main() {
	exact := flag.Bool("exact", false, "stream every rank instead of sampling (slow)")
	flag.Parse()

	cfg := &experiments.Config{}
	if *exact {
		cfg.LargeSampleRanks = -1
	} else {
		cfg.LargeSampleRanks = 8
	}

	stats, err := npb.LUConfig{Class: npb.ClassD, Procs: 1024}.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("class D on 1024 processes: %d time-independent actions (exact)\n",
		stats.TotalActions)
	fmt.Println("measuring trace sizes...")

	start := time.Now()
	res, err := experiments.LargeTrace(cfg, 7.8, 1.1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured in %v\n\n", time.Since(start).Round(time.Millisecond))
	experiments.RenderLarge(os.Stdout, res)

	fmt.Println("\nPaper (Section 6.5): acquisition < 25 min; 32.5 GiB time-independent")
	fmt.Println("trace, 7.8x smaller than TAU's 252.5 GiB; 1.2 GiB once gzip-compressed.")
}
