// lu_whatif demonstrates the capacity-planning use case motivating the
// paper: a computing centre wants objective performance indicators for
// candidate cluster upgrades *before* buying hardware. One time-independent
// trace of the NPB LU benchmark is acquired once, then replayed against
// several "what if?" platform scenarios — faster CPUs, a faster
// interconnect, both — by only changing the input files of the replay tool
// (Section 5: "a wide range of what-if scenarios can be explored without
// any modification of the simulator").
//
// Run with: go run ./examples/lu_whatif
package main

import (
	"fmt"
	"log"

	"tireplay/internal/mpi"
	"tireplay/internal/npb"
	"tireplay/internal/platform"
	"tireplay/internal/replay"
	"tireplay/internal/simx"
	"tireplay/internal/smpi"
	"tireplay/internal/trace"
	"tireplay/internal/units"
)

const procs = 8

// scenario is one candidate platform.
type scenario struct {
	name      string
	power     float64 // per-core flop/s
	bandwidth float64 // host link B/s
	latency   float64
}

func main() {
	// Acquire the trace once. The recorder engine generates the exact
	// per-rank traces the full acquisition pipeline would produce (verified
	// by the test suite), which keeps this example fast.
	prog, err := npb.LU(npb.LUConfig{Class: npb.ClassA, Procs: procs})
	if err != nil {
		log.Fatal(err)
	}
	perRank := make([][]trace.Action, procs)
	var total int
	for r := 0; r < procs; r++ {
		perRank[r], err = mpi.Record(r, procs, prog)
		if err != nil {
			log.Fatal(err)
		}
		total += len(perRank[r])
	}
	fmt.Printf("acquired one LU class A trace on %d processes: %d actions\n\n", procs, total)

	scenarios := []scenario{
		{"current cluster (bordereau)", platform.BordereauPower, platform.GigaEthernetBw, platform.ClusterLatency},
		{"2x faster CPUs", 2 * platform.BordereauPower, platform.GigaEthernetBw, platform.ClusterLatency},
		{"10G interconnect", platform.BordereauPower, platform.TenGigabitBw, platform.ClusterLatency / 2},
		{"both upgrades", 2 * platform.BordereauPower, platform.TenGigabitBw, platform.ClusterLatency / 2},
	}

	fmt.Printf("%-30s | %12s | %8s\n", "scenario", "predicted", "speedup")
	var baseline float64
	for i, sc := range scenarios {
		simTime, err := replayOn(sc, perRank)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			baseline = simTime
		}
		fmt.Printf("%-30s | %12s | %7.2fx\n",
			sc.name, units.FormatSeconds(simTime), baseline/simTime)
	}
	fmt.Println("\nSame trace, different platform files: that is the whole point of")
	fmt.Println("decoupling acquisition from replay with time-independent traces.")
}

// replayOn replays the trace on a cluster built from the scenario.
func replayOn(sc scenario, perRank [][]trace.Action) (float64, error) {
	k := simx.New()
	backbone := k.AddLink("backbone", 10*sc.bandwidth, sc.latency)
	hostLinks := make([]*simx.Link, procs)
	names := make([]string, procs)
	for i := 0; i < procs; i++ {
		names[i] = fmt.Sprintf("node-%d", i)
		k.AddHost(names[i], sc.power, 1)
		hostLinks[i] = k.AddLink(fmt.Sprintf("link-%d", i), sc.bandwidth, sc.latency)
	}
	for i := 0; i < procs; i++ {
		for j := 0; j < procs; j++ {
			if i != j {
				k.AddRoute(names[i], names[j], []*simx.Link{hostLinks[i], backbone, hostLinks[j]})
			}
		}
	}
	b := platform.WrapKernel(k, names)
	d, err := platform.RoundRobin(names, procs, 1)
	if err != nil {
		return 0, err
	}
	res, err := replay.RunActions(b, d, replay.Config{Model: smpi.Default()}, perRank)
	if err != nil {
		return 0, err
	}
	return res.SimulatedTime, nil
}
