// lu_whatif demonstrates the capacity-planning use case motivating the
// paper: a computing centre wants objective performance indicators for
// candidate cluster upgrades *before* buying hardware. One time-independent
// trace of the NPB LU benchmark is acquired once, then replayed against
// several "what if?" platform scenarios — faster CPUs, a faster
// interconnect, both — by only changing the input files of the replay tool
// (Section 5: "a wide range of what-if scenarios can be explored without
// any modification of the simulator").
//
// The scenarios run through the parallel sweep engine: the grid of CPU and
// interconnect upgrades is expanded into the cross product of its axes and
// every cell replays on its own simulation kernel across a worker pool,
// sharing the one parsed trace read-only.
//
// Run with: go run ./examples/lu_whatif
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"tireplay/internal/mpi"
	"tireplay/internal/npb"
	"tireplay/internal/platform"
	"tireplay/internal/sweep"
	"tireplay/internal/trace"
)

const procs = 8

func main() {
	// Acquire the trace once. The recorder engine generates the exact
	// per-rank traces the full acquisition pipeline would produce (verified
	// by the test suite), which keeps this example fast.
	prog, err := npb.LU(npb.LUConfig{Class: npb.ClassA, Procs: procs})
	if err != nil {
		log.Fatal(err)
	}
	perRank := make([][]trace.Action, procs)
	var total int
	for r := 0; r < procs; r++ {
		perRank[r], err = mpi.Record(r, procs, prog)
		if err != nil {
			log.Fatal(err)
		}
		total += len(perRank[r])
	}
	fmt.Printf("acquired one LU class A trace on %d processes: %d actions\n\n", procs, total)

	// The upgrade grid: {current, 2x CPUs} x {1G, 10G interconnect} x
	// {current, halved latency} — the four classic scenarios of the study
	// (current cluster, faster CPUs, 10G+low-latency fabric, both) are the
	// cells where bandwidth and latency upgrade together; the grid also
	// prices the in-between configurations for free. The first scenario is
	// the unmodified bordereau cluster, so the table's speedup column reads
	// relative to today's platform.
	res, err := sweep.Run(context.Background(), &sweep.Config{
		Platform: platform.BordereauWithCores(procs, 1),
		Grid: sweep.Grid{
			LatencyScale:   []float64{1, 0.5},
			BandwidthScale: []float64{1, 10},
			PowerScale:     []float64{1, 2},
		},
		Traces: sweep.TracesFromActions(perRank),
	})
	if err != nil {
		log.Fatal(err)
	}
	res.RenderTable(os.Stdout)

	fmt.Println("\nSame trace, different platform descriptions: that is the whole point")
	fmt.Println("of decoupling acquisition from replay with time-independent traces.")
}
