// folding_modes demonstrates the decoupling that makes time-independent
// traces original (Sections 4.2 and 6.2): the same LU instance is acquired
// under four execution scenarios — Regular, Folding, Scattering over two
// Grid'5000 sites, and both combined. The instrumented execution times vary
// wildly (that is Table 2), but the extracted traces are byte-identical and
// replay to the same predicted time, which no timestamp-based trace could
// do.
//
// Run with: go run ./examples/folding_modes
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"tireplay/internal/acquisition"
	"tireplay/internal/convert"
	"tireplay/internal/npb"
	"tireplay/internal/platform"
	"tireplay/internal/replay"
	"tireplay/internal/smpi"
	"tireplay/internal/trace"
	"tireplay/internal/units"
)

const procs = 8

func main() {
	prog, err := npb.LU(npb.LUConfig{Class: npb.ClassW, Procs: procs})
	if err != nil {
		log.Fatal(err)
	}
	camp := &acquisition.Campaign{Procs: procs, Program: prog, OverheadPerEvent: 1.5e-6}

	modes := []acquisition.Mode{
		acquisition.Regular(),
		acquisition.Folding(4),
		acquisition.Scattering(2),
		acquisition.ScatterFold(2, 4),
	}
	fmt.Printf("%-10s %-12s | %14s | %14s | %s\n",
		"mode", "nodes", "execution", "replayed", "trace digest")
	var reference string
	for _, m := range modes {
		dir, err := os.MkdirTemp("", "folding-")
		if err != nil {
			log.Fatal(err)
		}
		rep, err := camp.Run(dir, m, true)
		if err != nil {
			log.Fatal(err)
		}
		perRank, err := convert.ExtractDir(dir, procs)
		if err != nil {
			log.Fatal(err)
		}
		os.RemoveAll(dir)

		var sb strings.Builder
		for _, actions := range perRank {
			for _, a := range actions {
				sb.WriteString(a.Format())
				sb.WriteByte('\n')
			}
		}
		digest := fmt.Sprintf("%d actions / %s",
			rep.Actions, units.FormatBytes(float64(len(sb.String()))))
		if reference == "" {
			reference = sb.String()
		} else if sb.String() == reference {
			digest += " (identical)"
		} else {
			digest += " (DIFFERENT!)"
		}

		simTime, err := replayRegular(perRank)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %-12s | %14s | %14s | %s\n",
			rep.Mode, fmt.Sprint(rep.Nodes), units.FormatSeconds(rep.InstrumentedTime),
			units.FormatSeconds(simTime), digest)
	}
	fmt.Println("\nA classical timed trace acquired under F-4 would replay to the folded")
	fmt.Println("execution time; the time-independent trace always predicts the Regular one.")
}

// replayRegular replays the trace on the regular-mode target platform.
func replayRegular(perRank [][]trace.Action) (float64, error) {
	b, err := platform.BuildBordereauWithCores(procs, 1)
	if err != nil {
		return 0, err
	}
	d, err := platform.RoundRobin(b.HostNames, procs, 1)
	if err != nil {
		return 0, err
	}
	res, err := replay.RunActions(b, d, replay.Config{Model: smpi.Default()}, perRank)
	if err != nil {
		return 0, err
	}
	return res.SimulatedTime, nil
}
