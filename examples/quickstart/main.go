// Quickstart walks the complete framework through the paper's running
// example (Figure 1): a ring of four MPI processes, each computing one
// Mflop and passing one MB to its neighbour.
//
//  1. The instrumented application runs on the live engine, producing TAU
//     binary traces (Section 4: instrumentation + execution).
//  2. tau2simgrid-style extraction turns them into time-independent traces
//     (Section 4.3) — printed, they match Figure 1 of the paper.
//  3. The traces are replayed on the platform of Figure 5, predicting the
//     execution time on that cluster (Section 5).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"tireplay/internal/convert"
	"tireplay/internal/mpi"
	"tireplay/internal/platform"
	"tireplay/internal/replay"
	"tireplay/internal/smpi"
	"tireplay/internal/tau"
	"tireplay/internal/units"
)

// ring is the MPI code of Figure 1 (left), written against the substrate's
// Comm interface.
func ring(c mpi.Comm) {
	me, n := c.Rank(), c.Size()
	next := (me + 1) % n
	prev := (me - 1 + n) % n
	for i := 0; i < 4; i++ {
		if me == 0 {
			c.Compute(1e6) // compute 1 Mflop
			c.Send(next, 1e6)
			c.Recv(prev)
		} else {
			c.Recv(prev)
			c.Compute(1e6)
			c.Send(next, 1e6)
		}
	}
}

func main() {
	const procs = 4
	dir, err := os.MkdirTemp("", "quickstart-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Step 1: acquire.
	fmt.Println("== Acquisition (instrumented execution on the live engine)")
	makespan, files, err := tau.AcquireLive(dir, mpi.LiveConfig{Procs: procs}, 0, ring)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instrumented run finished at %s, %s of TAU traces\n\n",
		units.FormatSeconds(makespan), units.FormatBytes(float64(files.TraceBytes)))

	// Step 2: extract the time-independent trace.
	fmt.Println("== Time-independent trace (compare with Figure 1 of the paper)")
	perRank, err := convert.ExtractDir(dir, procs)
	if err != nil {
		log.Fatal(err)
	}
	for _, actions := range perRank {
		for _, a := range actions {
			fmt.Println(a.Format())
		}
	}
	fmt.Println()

	// Step 3: replay on the platform of Figure 5.
	fmt.Println("== Replay on the mycluster platform (Figures 5 and 6)")
	p, err := platform.Parse(paperPlatform())
	if err != nil {
		log.Fatal(err)
	}
	b, err := platform.Instantiate(p)
	if err != nil {
		log.Fatal(err)
	}
	d, err := platform.RoundRobin(b.HostNames, procs, 1)
	if err != nil {
		log.Fatal(err)
	}
	res, err := replay.RunActions(b, d, replay.Config{Model: smpi.Default()}, perRank)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated execution time: %s (%d actions replayed in %v)\n",
		units.FormatSeconds(res.SimulatedTime), res.Actions, res.WallTime)
}

// paperPlatform returns the platform file of Figure 5, verbatim.
func paperPlatform() *os.File {
	const xml = `<?xml version='1.0'?>
<!DOCTYPE platform SYSTEM "simgrid.dtd">
<platform version="3">
  <AS id="AS_mysite" routing="Full">
    <cluster id="AS_mycluster"
             prefix="mycluster-" suffix=".mysite.fr"
             radical="0-3" power="1.17E9"
             bw="1.25E8" lat="16.67E-6"
             bb_bw="1.25E9" bb_lat="16.67E-6"/>
  </AS>
</platform>`
	f, err := os.CreateTemp("", "platform-*.xml")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := f.WriteString(xml); err != nil {
		log.Fatal(err)
	}
	if _, err := f.Seek(0, 0); err != nil {
		log.Fatal(err)
	}
	return f
}
