// topozoo is the walkthrough of the topology zoo (cmd/tisweep's -topo axis
// in library form): it acquires one NPB LU trace and replays it unchanged
// across three generated interconnects — a 4-ary fat-tree, a 4x4 torus and
// a 2-group dragonfly — at two interconnect latencies, printing the
// makespan-vs-topology table. The trace is acquired once; only the network
// model under it changes, the paper's what-if promise applied to topology
// procurement.
//
// Run with: go run ./examples/topozoo
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"tireplay/internal/mpi"
	"tireplay/internal/npb"
	"tireplay/internal/sweep"
	"tireplay/internal/trace"
)

const procs = 8

func main() {
	// 1. Acquire one time-independent LU trace.
	prog, err := npb.LU(npb.LUConfig{Class: npb.ClassA, Procs: procs})
	if err != nil {
		log.Fatal(err)
	}
	perRank := make([][]trace.Action, procs)
	for r := 0; r < procs; r++ {
		if perRank[r], err = mpi.Record(r, procs, prog); err != nil {
			log.Fatal(err)
		}
	}
	traces := sweep.TracesFromActions(perRank)

	// 2. The topology axis: every scenario builds its interconnect from a
	// generator (zones + computed routes, no per-pair tables), so even
	// thousand-host fabrics cost O(hosts) to stand up. The 8 ranks deploy
	// onto the first 8 hosts of each topology.
	topos, err := sweep.ParseTopoList("fat-tree:4,torus:4x4,dragonfly:2x4x2")
	if err != nil {
		log.Fatal(err)
	}

	// 3. Cross it with an interconnect-latency what-if: at 20x latency the
	// hop-count differences between the fabrics dominate LU's small
	// boundary exchanges.
	cfg := &sweep.Config{
		Grid: sweep.Grid{
			LatencyScale: []float64{1, 20},
			Topo:         topos,
		},
		Traces: traces,
	}
	res, err := sweep.Run(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	res.RenderTable(os.Stdout)

	fmt.Println()
	seen := make(map[string]bool)
	for i := range res.Scenarios {
		s := &res.Scenarios[i]
		if s.Err != "" {
			log.Fatalf("scenario %s: %s", s.Name, s.Err)
		}
		if seen[s.Topo.String()] {
			continue
		}
		seen[s.Topo.String()] = true
		fmt.Printf("%-22s %3d hosts, rank0->rank%d route: %2d links\n",
			s.Topo.String(), s.Topo.HostCount(), procs-1, s.Topo.Hops(0, procs-1))
	}
}
