// benchmark_suite traces and replays the four NPB skeletons — LU, MG, CG
// and EP — on the same modelled cluster, then prints the predicted times
// together with a per-application execution profile (the profile output
// sketched in Figure 4 of the paper). It illustrates how differently the
// kernels stress the platform: LU pipelines wavefronts, MG exchanges
// six-neighbour halos across a grid hierarchy, CG is latency-bound on
// dot-product reductions, EP barely communicates at all.
//
// Run with: go run ./examples/benchmark_suite
package main

import (
	"fmt"
	"log"
	"os"

	"tireplay/internal/mpi"
	"tireplay/internal/npb"
	"tireplay/internal/platform"
	"tireplay/internal/replay"
	"tireplay/internal/smpi"
	"tireplay/internal/trace"
	"tireplay/internal/units"
)

const procs = 8

func main() {
	benchmarks := []struct {
		name string
		prog mpi.Program
	}{
		{"LU", mustLU()},
		{"MG", mustProg(npb.MG(npb.MGConfig{ClassName: "S", Procs: procs}))},
		{"CG", mustProg(npb.CG(npb.CGConfig{ClassName: "S", Procs: procs}))},
		{"EP", mustProg(npb.EP(npb.EPConfig{ClassName: "S", Procs: procs}))},
	}

	fmt.Printf("%-4s | %10s | %12s | %12s | %10s\n",
		"app", "actions", "comm bytes", "flops", "predicted")
	for _, bm := range benchmarks {
		// Generate the time-independent trace with the recorder engine.
		perRank := make([][]trace.Action, procs)
		var stats trace.Stats
		for r := 0; r < procs; r++ {
			acts, err := mpi.Record(r, procs, bm.prog)
			if err != nil {
				log.Fatal(err)
			}
			perRank[r] = acts
			for _, a := range acts {
				stats.Observe(a)
			}
		}

		// Replay it on the modelled cluster.
		b, err := platform.BuildBordereauWithCores(procs, 1)
		if err != nil {
			log.Fatal(err)
		}
		d, err := platform.RoundRobin(b.HostNames, procs, 1)
		if err != nil {
			log.Fatal(err)
		}
		prof := replay.NewProfile()
		res, err := replay.RunActions(b, d,
			replay.Config{Model: smpi.Default(), TimedTracer: prof}, perRank)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4s | %10d | %12s | %12s | %10s\n",
			bm.name, stats.Actions,
			units.FormatBytes(stats.CommBytes), units.FormatFlops(stats.Flops),
			units.FormatSeconds(res.SimulatedTime))

		if bm.name == "LU" {
			fmt.Println("\nLU per-process profile (simulated):")
			for _, warn := range prof.Render(os.Stdout, res.SimulatedTime) {
				fmt.Println("warning:", warn)
			}
			fmt.Println()
		}
	}
}

func mustLU() mpi.Program {
	return mustProg(npb.LU(npb.LUConfig{Class: npb.ClassS, Procs: procs}))
}

func mustProg(p mpi.Program, err error) mpi.Program {
	if err != nil {
		log.Fatal(err)
	}
	return p
}
