// sweep is the walkthrough of the parallel what-if engine (cmd/tisweep's
// library form): it acquires one LU trace, writes it out as per-rank trace
// files the way the acquisition pipeline would, loads them back as a shared
// TraceSet, and explores a 12-scenario grid of platform hypotheses on a
// worker pool — measuring the wall-clock gain over a serial sweep and
// verifying the results are identical.
//
// Run with: go run ./examples/sweep
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"tireplay/internal/mpi"
	"tireplay/internal/npb"
	"tireplay/internal/platform"
	"tireplay/internal/sweep"
	"tireplay/internal/trace"
)

const procs = 8

func main() {
	// 1. Acquire one time-independent trace and split it into the
	// per-process files of Section 5 (SG_process<r>.trace).
	prog, err := npb.LU(npb.LUConfig{Class: npb.ClassA, Procs: procs})
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "tisweep-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	var all []trace.Action
	for r := 0; r < procs; r++ {
		acts, err := mpi.Record(r, procs, prog)
		if err != nil {
			log.Fatal(err)
		}
		all = append(all, acts...)
	}
	if _, err := trace.WriteSplit(dir, procs, all); err != nil {
		log.Fatal(err)
	}

	// 2. Load the files once; scenarios share the parsed trace read-only.
	traces, err := sweep.LoadDir(dir, procs)
	if err != nil {
		log.Fatal(err)
	}
	defer traces.Close()

	// 3. A 12-scenario hypothesis grid: interconnect latency halved or
	// doubled, bandwidth 1x/10x, CPUs 1x/1.5x/2x.
	cfg := &sweep.Config{
		Platform: platform.BordereauWithCores(procs, 1),
		Grid: sweep.Grid{
			LatencyScale:   []float64{0.5, 2},
			BandwidthScale: []float64{1, 10},
			PowerScale:     []float64{1, 1.5, 2},
		},
		Traces: traces,
	}

	// 4. Serial reference, then the parallel pool.
	cfg.Workers = 1
	t0 := time.Now()
	serial, err := sweep.Run(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	serialWall := time.Since(t0)

	cfg.Workers = runtime.GOMAXPROCS(0)
	t0 = time.Now()
	parallel, err := sweep.Run(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	parallelWall := time.Since(t0)

	for i := range serial.Scenarios {
		if serial.Scenarios[i].SimulatedTime != parallel.Scenarios[i].SimulatedTime {
			log.Fatalf("scenario %d differs between worker counts", i)
		}
	}

	parallel.RenderTable(os.Stdout)
	fmt.Printf("\n%d scenarios: serial %v, %d workers %v (%.2fx) — identical predictions\n",
		len(parallel.Scenarios), serialWall.Round(time.Millisecond),
		parallel.Workers, parallelWall.Round(time.Millisecond),
		float64(serialWall)/float64(parallelWall))
}
