// serve is the walkthrough — and the CI smoke harness — of the resident
// sweep daemon (cmd/tiserved). It exercises the service the way production
// would, asserting the contracts on the way:
//
//  1. boot tiserved on an ephemeral port and wait for /healthz
//  2. upload an NPB LU trace fixture (content-addressed: re-upload dedups)
//  3. run an 8-cell collective-algorithm sweep twice — the second answer
//     must be a 100% cache hit, byte-identical, with zero extra replay
//  4. fire identical concurrent fresh requests — they must coalesce onto
//     one kernel run
//  5. flood a 1-slot/1-queue daemon with distinct requests — overflow must
//     shed with 429 + Retry-After while admitted work completes
//  6. SIGTERM the daemon — it must drain and exit 0, and with -leakcheck
//     it proves no goroutine outlived shutdown
//
// Run with: go run ./examples/serve
// (builds cmd/tiserved itself; pass -daemon to reuse a prebuilt binary)
//
// The same conversation by hand:
//
//	tiserved -addr 127.0.0.1:8347 &
//	curl -s localhost:8347/traces -d '{"traces":["p0 compute 1e9", ...]}'
//	curl -s localhost:8347/sweeps -d '{"trace":"sha256:...","grid":{"lat":"1,2"}}'
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"tireplay/internal/mpi"
	"tireplay/internal/npb"
	"tireplay/internal/serve"
)

const (
	procs     = 4
	collSweep = `{"trace":%q,"grid":{"coll":"default;binomial;bcast=binomial;allReduce=ring","lat":"1,2"}}`
)

func main() {
	daemon := flag.String("daemon", "", "path to a prebuilt tiserved binary (default: build cmd/tiserved)")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("serve-smoke: ")

	tmp, err := os.MkdirTemp("", "tiserved-smoke-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)

	bin := *daemon
	if bin == "" {
		bin = filepath.Join(tmp, "tiserved")
		log.Printf("building %s", bin)
		build := exec.Command("go", "build", "-o", bin, "./cmd/tiserved")
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			log.Fatalf("building tiserved: %v", err)
		}
	}

	// 1. Boot the daemon: ephemeral port, tiny admission queue (so the
	// flood check below is deterministic), leak check armed.
	addrFile := filepath.Join(tmp, "tiserved.addr")
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0", "-addr-file", addrFile,
		"-max-concurrent", "1", "-queue", "1", "-workers", "2",
		"-grace", "60s", "-leakcheck")
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		log.Fatalf("starting tiserved: %v", err)
	}
	daemonDone := make(chan error, 1)
	go func() { daemonDone <- cmd.Wait() }()
	defer cmd.Process.Kill()

	base := "http://" + waitForAddr(addrFile, daemonDone)
	waitForHealth(base)
	log.Printf("daemon up at %s", base)

	// 2. Upload the NPB LU fixture; verify content addressing dedups.
	digest := uploadFixture(base)
	if again := uploadFixture(base); again != digest {
		log.Fatalf("re-upload changed the digest: %s then %s", digest, again)
	}
	log.Printf("fixture stored as %s", digest)

	// 3. The 8-cell collective sweep, twice.
	body := fmt.Sprintf(collSweep, digest)
	st, cache1, first := post(base+"/sweeps", body)
	if st != http.StatusOK || cache1 != "miss" {
		log.Fatalf("first sweep: status %d cache %q: %s", st, cache1, first)
	}
	assertScenarios(first, 8)
	runsAfterFirst := stats(base).SweepsRun

	st, cache2, second := post(base+"/sweeps", body)
	if st != http.StatusOK || cache2 != "hit" {
		log.Fatalf("second sweep: status %d cache %q, want a 100%% cache hit", st, cache2)
	}
	if !bytes.Equal(first, second) {
		log.Fatalf("cached response is not byte-identical (%d vs %d bytes)", len(first), len(second))
	}
	if got := stats(base).SweepsRun; got != runsAfterFirst {
		log.Fatalf("cache hit replayed: sweeps_run %d -> %d", runsAfterFirst, got)
	}
	log.Printf("repeat served from cache, byte-identical (%d bytes, zero replay)", len(second))

	// 4. Identical concurrent fresh requests coalesce onto one run.
	fresh := fmt.Sprintf(`{"trace":%q,"grid":{"lat":"1,2,3,4","bw":"1,2"}}`, digest)
	before := stats(base).SweepsRun
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if st, _, resp := post(base+"/sweeps", fresh); st != http.StatusOK {
				log.Fatalf("coalesced client: status %d: %s", st, resp)
			}
		}()
	}
	wg.Wait()
	if delta := stats(base).SweepsRun - before; delta != 1 {
		log.Fatalf("4 identical concurrent requests ran %d sweeps, want 1", delta)
	}
	log.Printf("4 concurrent identical requests coalesced onto 1 run")

	// 5. Flood the 1-slot/1-queue daemon: occupy the slot with a long
	// sweep, then fire distinct requests; overflow must shed with 429.
	slow := fmt.Sprintf(`{"trace":%q,"grid":{"lat":"%s","bw":"1,2,3,4"}}`, digest, floatList(32))
	slowDone := make(chan int, 1)
	go func() {
		st, _, _ := post(base+"/sweeps", slow)
		slowDone <- st
	}()
	waitFor("admitted sweep running", func() bool { return stats(base).Queue.Running == 1 })

	var shed atomic.Int64
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"trace":%q,"grid":{"lat":"%d.25"}}`, digest, i+100)
			resp, err := http.Post(base+"/sweeps", "application/json", strings.NewReader(body))
			if err != nil {
				log.Fatalf("flood client %d: %v", i, err)
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			if resp.StatusCode == http.StatusTooManyRequests {
				if resp.Header.Get("Retry-After") == "" {
					log.Fatalf("shed response missing Retry-After")
				}
				shed.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if shed.Load() < 1 {
		log.Fatalf("flooded a full queue with 4 distinct requests, none were shed")
	}
	if st := <-slowDone; st != http.StatusOK {
		log.Fatalf("admitted sweep was disturbed by the flood: status %d", st)
	}
	final := stats(base)
	log.Printf("flood: %d/4 shed with 429+Retry-After, admitted sweep unharmed", shed.Load())

	// 6. Graceful shutdown: drain, exit 0, no goroutines left behind.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		log.Fatalf("signalling daemon: %v", err)
	}
	select {
	case err := <-daemonDone:
		if err != nil {
			log.Fatalf("daemon exit: %v (leak check or shutdown failure)", err)
		}
	case <-time.After(90 * time.Second):
		log.Fatalf("daemon did not exit within 90s of SIGTERM")
	}

	log.Printf("PASS: %d sweeps run, %d scenarios served, cache %d+%d hits / %d misses, %d coalesced, %d shed, clean exit",
		final.SweepsRun, final.ScenariosServed,
		final.Cache.BodyHits, final.Cache.Hits, final.Cache.Misses,
		final.Coalesced, final.Queue.Shed)
}

// uploadFixture records the NPB LU pseudo-application and uploads its
// per-rank time-independent traces inline.
func uploadFixture(base string) string {
	prog, err := npb.LU(npb.LUConfig{Class: npb.ClassS, Procs: procs})
	if err != nil {
		log.Fatal(err)
	}
	texts := make([]string, procs)
	for r := 0; r < procs; r++ {
		acts, err := mpi.Record(r, procs, prog)
		if err != nil {
			log.Fatal(err)
		}
		var b strings.Builder
		for _, a := range acts {
			b.WriteString(a.Format())
			b.WriteByte('\n')
		}
		texts[r] = b.String()
	}
	payload, err := json.Marshal(map[string]any{"traces": texts})
	if err != nil {
		log.Fatal(err)
	}
	st, _, resp := post(base+"/traces", string(payload))
	if st != http.StatusOK {
		log.Fatalf("upload: status %d: %s", st, resp)
	}
	var up struct {
		Digest string `json:"digest"`
	}
	if err := json.Unmarshal(resp, &up); err != nil {
		log.Fatal(err)
	}
	return up.Digest
}

func post(url, body string) (status int, xcache string, respBody []byte) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		log.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatalf("POST %s: reading response: %v", url, err)
	}
	return resp.StatusCode, resp.Header.Get("X-Cache"), b
}

func stats(base string) serve.Stats {
	resp, err := http.Get(base + "/stats")
	if err != nil {
		log.Fatalf("GET /stats: %v", err)
	}
	defer resp.Body.Close()
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatalf("decoding /stats: %v", err)
	}
	return st
}

func assertScenarios(body []byte, want int) {
	var resp struct {
		Scenarios []struct {
			SimulatedTime float64 `json:"simulated_time"`
			Err           string  `json:"err"`
		} `json:"scenarios"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		log.Fatalf("decoding sweep response: %v", err)
	}
	if len(resp.Scenarios) != want {
		log.Fatalf("got %d scenarios, want %d", len(resp.Scenarios), want)
	}
	for i, sc := range resp.Scenarios {
		if sc.Err != "" || sc.SimulatedTime <= 0 {
			log.Fatalf("scenario %d: err=%q t=%g", i, sc.Err, sc.SimulatedTime)
		}
	}
}

// waitForAddr polls for the daemon's addr file, bailing early if the daemon
// already died.
func waitForAddr(path string, daemonDone <-chan error) string {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		select {
		case err := <-daemonDone:
			log.Fatalf("daemon exited before binding: %v", err)
		default:
		}
		if b, err := os.ReadFile(path); err == nil && len(bytes.TrimSpace(b)) > 0 {
			return string(bytes.TrimSpace(b))
		}
		time.Sleep(20 * time.Millisecond)
	}
	log.Fatalf("daemon never wrote %s", path)
	return ""
}

func waitForHealth(base string) {
	waitFor("daemon healthy", func() bool {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	})
}

func waitFor(what string, cond func() bool) {
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			log.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// floatList renders "1,2,...,n" for grid padding.
func floatList(n int) string {
	var b strings.Builder
	for i := 1; i <= n; i++ {
		if i > 1 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", i)
	}
	return b.String()
}
